#include "core/spec/batch.hpp"

#include <map>
#include <utility>

namespace pqra::core::spec {

const char* rule_id(Rule rule) {
  switch (rule) {
    case Rule::kR1:
      return "R1";
    case Rule::kR2:
      return "R2";
    case Rule::kR4:
      return "R4";
    case Rule::kSingleWriter:
      return "single-writer";
    case Rule::kRegular:
      return "regular";
    case Rule::kAtomic:
      return "atomic";
  }
  return "?";
}

std::optional<Rule> parse_rule(std::string_view id) {
  for (Rule rule : {Rule::kR1, Rule::kR2, Rule::kR4, Rule::kSingleWriter,
                    Rule::kRegular, Rule::kAtomic}) {
    if (id == rule_id(rule)) return rule;
  }
  return std::nullopt;
}

bool BatchResult::ok() const {
  for (const RuleOutcome& outcome : outcomes) {
    if (!outcome.result.ok) return false;
  }
  return true;
}

const RuleOutcome* BatchResult::first_failure() const {
  for (const RuleOutcome& outcome : outcomes) {
    if (!outcome.result.ok) return &outcome;
  }
  return nullptr;
}

std::string BatchResult::summary() const {
  const RuleOutcome* failure = first_failure();
  if (failure == nullptr) return "ok";
  std::string out = rule_id(failure->rule);
  out += ": ";
  out += failure->result.violations.empty() ? "(no detail)"
                                            : failure->result.violations[0];
  const std::size_t extra = num_violations() - 1;
  if (extra > 0) out += " (+" + std::to_string(extra) + " more)";
  return out;
}

std::size_t BatchResult::num_violations() const {
  std::size_t n = 0;
  for (const RuleOutcome& outcome : outcomes) {
    n += outcome.result.violations.size();
  }
  return n;
}

BatchResult check_batch(const std::vector<OpRecord>& ops,
                        const BatchOptions& options) {
  BatchResult result;
  if (options.r1) result.outcomes.push_back({Rule::kR1, check_r1(ops)});
  if (options.r2) result.outcomes.push_back({Rule::kR2, check_r2(ops)});
  if (options.r4) result.outcomes.push_back({Rule::kR4, check_r4(ops)});
  if (options.single_writer) {
    result.outcomes.push_back({Rule::kSingleWriter, check_single_writer(ops)});
  }
  if (options.regular) {
    result.outcomes.push_back({Rule::kRegular, check_regular(ops)});
  }
  if (options.atomic) {
    result.outcomes.push_back({Rule::kAtomic, check_atomic(ops)});
  }
  return result;
}

std::string KeyedBatchResult::summary() const {
  if (!first.has_value()) {
    return "ok over " + std::to_string(keys_checked) + " keys";
  }
  std::string out = rule_id(first->rule);
  out += " key=" + std::to_string(first->key) + ": " + first->violation;
  if (num_violations > 1) {
    out += " (+" + std::to_string(num_violations - 1) + " more)";
  }
  return out;
}

KeyedBatchResult check_batch_by_key(const std::vector<OpRecord>& ops,
                                    const BatchOptions& options) {
  // Ordered buckets: ascending key order makes the first-failure
  // attribution (and the summary line) deterministic.
  std::map<RegisterId, std::vector<OpRecord>> by_key;
  for (const OpRecord& op : ops) by_key[op.reg].push_back(op);

  KeyedBatchResult result;
  result.keys_checked = by_key.size();
  for (const auto& [key, key_ops] : by_key) {
    const BatchResult batch = check_batch(key_ops, options);
    result.num_violations += batch.num_violations();
    if (!result.first.has_value()) {
      if (const RuleOutcome* failure = batch.first_failure()) {
        KeyedFirstFailure first;
        first.rule = failure->rule;
        first.key = key;
        first.violation = failure->result.violations.empty()
                              ? "(no detail)"
                              : failure->result.violations[0];
        result.first = std::move(first);
      }
    }
  }
  return result;
}

}  // namespace pqra::core::spec
