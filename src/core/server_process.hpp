#pragma once

/// \file server_process.hpp
/// Discrete-event-simulation wrapper around a Replica: receives protocol
/// requests from the transport and answers immediately (service time is
/// folded into the link delays, as in the paper's model).
///
/// Optionally runs anti-entropy gossip (an extension; the paper's servers
/// never talk to each other): every `interval` time units the server pushes
/// its whole store to one uniformly random peer, which merges it
/// timestamp-wise.  Gossip changes the staleness economics for tiny quorums
/// — measured in bench/register_modes.

#include "core/replica.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace pqra::core {

/// Anti-entropy configuration; disabled by default.
struct GossipOptions {
  /// 0 disables gossip.  Otherwise one push per interval (plus jitter drawn
  /// in [0, interval) for the first tick so servers do not fire in phase).
  sim::Time interval = 0.0;
  /// The replica group occupies NodeIds [group_base, group_base+group_size).
  net::NodeId group_base = 0;
  std::size_t group_size = 0;
};

class ServerProcess final : public net::Receiver {
 public:
  ServerProcess(net::Transport& transport, NodeId self);

  /// Gossiping server; \p simulator drives the periodic pushes.
  ServerProcess(net::Transport& transport, NodeId self,
                sim::Simulator& simulator, const GossipOptions& gossip,
                const util::Rng& rng);

  void on_message(NodeId from, net::Message msg) override;

  Replica& replica() { return replica_; }
  const Replica& replica() const { return replica_; }
  NodeId id() const { return self_; }
  std::uint64_t gossip_merges() const { return gossip_merges_; }

 private:
  void schedule_gossip(sim::Time delay);
  void gossip_tick();

  net::Transport& transport_;
  NodeId self_;
  Replica replica_;
  sim::Simulator* simulator_ = nullptr;
  GossipOptions gossip_;
  util::Rng rng_;
  std::uint64_t gossip_merges_ = 0;
};

}  // namespace pqra::core
