#pragma once

/// \file server_process.hpp
/// Discrete-event-simulation wrapper around a Replica: receives protocol
/// requests from the transport and answers immediately (service time is
/// folded into the link delays, as in the paper's model).
///
/// Optionally runs anti-entropy gossip (an extension; the paper's servers
/// never talk to each other): every `interval` time units the server pushes
/// its whole store to one uniformly random peer, which merges it
/// timestamp-wise.  Gossip changes the staleness economics for tiny quorums
/// — measured in bench/register_modes.

#include <optional>

#include "core/replica.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace pqra::core {

/// Registry-backed replica-server instruments, shared by ServerProcess and
/// ThreadedServer (obs/names.hpp server names).  Aggregated over all
/// servers bound to the same registry.
struct ServerMetrics {
  explicit ServerMetrics(obs::Registry& registry);

  obs::Counter* requests;     ///< protocol requests served (read+write)
  obs::Counter* ts_advances;  ///< writes that advanced a register timestamp
  obs::Counter* gossip_merges;
  obs::Counter* keys_created;  ///< first store entry per key (write/gossip)
};

/// Anti-entropy configuration; disabled by default.
struct GossipOptions {
  /// 0 disables gossip.  Otherwise one push per interval (plus jitter drawn
  /// in [0, interval) for the first tick so servers do not fire in phase).
  sim::Time interval = 0.0;
  /// The replica group occupies NodeIds [group_base, group_base+group_size).
  net::NodeId group_base = 0;
  std::size_t group_size = 0;
};

class ServerProcess final : public net::Receiver {
 public:
  /// \p metrics: optional unified metrics registry (non-owning).
  ServerProcess(net::Transport& transport, NodeId self,
                obs::Registry* metrics = nullptr);

  /// Gossiping server; \p simulator drives the periodic pushes.
  ServerProcess(net::Transport& transport, NodeId self,
                sim::Simulator& simulator, const GossipOptions& gossip,
                const util::Rng& rng, obs::Registry* metrics = nullptr);

  void on_message(NodeId from, net::Message msg) override;

  /// Emits a zero-duration kServerHandle span, parented to the request's
  /// RPC span, for every traced request this server answers.  \p simulator
  /// supplies timestamps (the plain constructor does not know one); the
  /// sink must be the same one the clients write to, or parent links
  /// cannot resolve.  Request trace/span headers are echoed on replies
  /// whether or not a sink is bound.
  void bind_spans(obs::SpanSink* spans, sim::Simulator& simulator) {
    spans_ = spans;
    span_sim_ = &simulator;
  }

  Replica& replica() { return replica_; }
  const Replica& replica() const { return replica_; }
  NodeId id() const { return self_; }
  std::uint64_t gossip_merges() const { return gossip_merges_; }

 private:
  void schedule_gossip(sim::Time delay);
  void gossip_tick();
  void record_handle_span(const net::Message& request, Timestamp reply_ts);

  net::Transport& transport_;
  NodeId self_;
  Replica replica_;
  sim::Simulator* simulator_ = nullptr;
  GossipOptions gossip_;
  util::Rng rng_;
  std::uint64_t gossip_merges_ = 0;
  std::optional<ServerMetrics> metrics_;
  obs::SpanSink* spans_ = nullptr;
  sim::Simulator* span_sim_ = nullptr;
};

}  // namespace pqra::core
