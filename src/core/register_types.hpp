#pragma once

/// \file register_types.hpp
/// Shared value/timestamp types of the register layer.

#include "net/message.hpp"

namespace pqra::core {

using net::NodeId;
using net::OpId;
using net::RegisterId;
using net::Timestamp;
using net::Value;

/// A replica's view of one register: the value plus the timestamp its single
/// writer attached to it.  Timestamp 0 is the preloaded initial value.
struct TimestampedValue {
  Timestamp ts = 0;
  Value value;
};

}  // namespace pqra::core
