#pragma once

/// \file register_types.hpp
/// Shared value/timestamp types of the register layer, plus the recovery
/// policy every register client (DES and threaded) applies under faults.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>

#include "net/message.hpp"
#include "sim/delay_model.hpp"
#include "util/rng.hpp"

namespace pqra::core {

using net::NodeId;
using net::OpId;
using net::RegisterId;
using net::Timestamp;
using net::Value;

/// A replica's view of one register: the value plus the timestamp its single
/// writer attached to it.  Timestamp 0 is the preloaded initial value.
struct TimestampedValue {
  Timestamp ts = 0;
  Value value;
};

/// How an operation completed (docs/FAULTS.md).
enum class OpStatus {
  kOk,        ///< full quorum of acks gathered
  kDegraded,  ///< deadline hit; accepted the partial access set collected
  kTimedOut,  ///< deadline hit with too few acks; operation failed
  kShutdown,  ///< the runtime shut down before the operation finished
};

constexpr const char* op_status_name(OpStatus s) {
  switch (s) {
    case OpStatus::kOk:
      return "ok";
    case OpStatus::kDegraded:
      return "degraded";
    case OpStatus::kTimedOut:
      return "timed_out";
    case OpStatus::kShutdown:
      return "shutdown";
  }
  return "?";
}

/// Client recovery policy: per-attempt timeout, exponential backoff with
/// deterministic jitter, an absolute per-operation deadline, and optional
/// graceful degradation.  Times are in the runtime's unit (sim-time for the
/// DES clients, seconds for the blocking client).
///
/// An attempt sends the RPC to a fresh random quorum; acks accumulate across
/// attempts under the same operation id, which is what lets probabilistic
/// quorums ride out churn (a few resampled quorums together cover k live
/// servers long before a strict majority is reachable).
struct RetryPolicy {
  /// Re-send to a fresh quorum when an attempt has not completed within this
  /// time.  nullopt disables retries (and the deadline machinery).
  std::optional<sim::Time> rpc_timeout;

  /// Each successive attempt waits rpc_timeout * backoff_factor^i, capped at
  /// max_backoff, +/- up to jitter (fraction) drawn from the client's
  /// dedicated retry RNG stream.
  double backoff_factor = 2.0;
  double max_backoff = 64.0;
  double jitter = 0.1;

  /// Absolute budget for the whole operation measured from its start.  When
  /// it expires the operation completes degraded (if allowed and enough acks
  /// arrived) or fails with OpStatus::kTimedOut.
  std::optional<sim::Time> deadline;

  /// Accept a partial access set of >= min_degraded_acks responses at the
  /// deadline instead of failing.  Degraded reads report the weakened
  /// epsilon-intersection staleness bound for their actual access-set size.
  bool degraded_ok = false;
  std::size_t min_degraded_acks = 1;

  /// Wait before retry number \p attempt + 1: rpc_timeout scaled by
  /// backoff_factor^attempt, capped at max_backoff, jittered from
  /// \p jitter_rng (the client's dedicated retry stream — never the quorum
  /// sampling stream, so fault-free replays stay byte-identical).
  /// Requires rpc_timeout to be set.
  sim::Time backoff(std::uint32_t attempt, util::Rng& jitter_rng) const {
    sim::Time wait = *rpc_timeout;
    if (backoff_factor != 1.0 && attempt > 0) {
      wait *= std::pow(backoff_factor, static_cast<double>(attempt));
    }
    wait = std::min(wait, max_backoff);
    if (jitter > 0.0) {
      wait *= 1.0 + jitter * (2.0 * jitter_rng.uniform01() - 1.0);
    }
    return wait;
  }

  /// Convenience: plain fixed-interval retry, the pre-policy behaviour.
  static RetryPolicy fixed(sim::Time timeout) {
    RetryPolicy p;
    p.rpc_timeout = timeout;
    p.backoff_factor = 1.0;
    p.max_backoff = timeout;
    p.jitter = 0.0;
    return p;
  }
};

}  // namespace pqra::core
