#pragma once

/// \file blocking_register.hpp
/// Blocking client for the real-threads runtime.
///
/// Same protocol as QuorumRegisterClient, written in direct style: the
/// calling thread sends the quorum requests and blocks on its mailbox until
/// the quorum has answered.  One client object per thread (it owns the
/// thread's NodeId mailbox); monotone caching is per client, matching the
/// per-process cache of §6.2.
///
/// Recovery (docs/FAULTS.md): the same core::RetryPolicy the DES client
/// uses, in wall-clock seconds.  When an attempt's timeout expires the
/// client re-sends to a fresh quorum while acks keep accumulating; when the
/// operation deadline expires it either completes degraded (on a partial
/// access set) or returns nullopt with last_status() == kTimedOut — this is
/// what keeps a read against a fully-crashed quorum from blocking forever.

#include <chrono>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/register_types.hpp"
#include "net/thread_transport.hpp"
#include "obs/metrics.hpp"
#include "quorum/quorum_system.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pqra::core {

struct BlockingReadResult {
  Timestamp ts = 0;
  Value value;
  bool from_monotone_cache = false;
  OpStatus status = OpStatus::kOk;
  /// Distinct servers that answered.
  std::size_t acks = 0;
  /// Degraded reads only: C(n - k_w, acks) / C(n, acks), the probability the
  /// partial access set missed the latest write's quorum.
  double staleness_bound = 0.0;
};

class BlockingRegisterClient {
 public:
  /// \p metrics: optional thread-safe registry (non-owning); operation
  /// counts and wall-clock latency histograms (seconds) report under the
  /// same obs/names.hpp client names as the DES client.
  /// \p retry: recovery policy in wall-clock seconds.  The default policy
  /// (no rpc_timeout, no deadline) blocks until the quorum answers, the
  /// pre-policy behaviour.
  BlockingRegisterClient(net::ThreadTransport& transport, NodeId self,
                         const quorum::QuorumSystem& quorums,
                         NodeId server_base, const util::Rng& rng,
                         bool monotone = false,
                         obs::Registry* metrics = nullptr,
                         RetryPolicy retry = {});

  /// Blocks until a read quorum answers, the retry policy's deadline passes,
  /// or the transport closes.  nullopt on shutdown or timeout — consult
  /// last_status() to tell the two apart.  Degraded completions return a
  /// value with status == kDegraded.
  std::optional<BlockingReadResult> read(RegisterId reg);

  /// Blocks until a write quorum acks (same giving-up rules as read()).
  /// Returns the timestamp written, or nullopt on shutdown/timeout.  This
  /// client must be the register's only writer.
  std::optional<Timestamp> write(RegisterId reg, Value value);

  /// How the most recent operation on this client finished.
  OpStatus last_status() const { return last_status_; }

  NodeId id() const { return self_; }
  std::uint64_t monotone_cache_hits() const { return monotone_cache_hits_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t op_failures() const { return op_failures_; }

  /// Wall-clock operation latency in seconds, accumulated lock-free (the
  /// client is single-threaded by construction); merge across clients with
  /// util::OnlineStats::merge after the worker threads join.
  const util::OnlineStats& read_latency() const { return read_latency_; }
  const util::OnlineStats& write_latency() const { return write_latency_; }

 private:
  using Clock = std::chrono::steady_clock;

  enum class Await { kDone, kTimeout, kShutdown };

  /// How one whole operation (all attempts) ended.
  struct OpOutcome {
    OpStatus status = OpStatus::kOk;
    std::size_t acks = 0;
  };

  /// Collects acks for \p op until \p needed distinct servers answered,
  /// the optional wall-clock deadline \p until passes, or shutdown.
  /// Responders accumulate across calls (retry attempts share the op id).
  Await await_acks(OpId op, net::MsgType expected, std::size_t needed,
                   std::vector<NodeId>& responders, Timestamp& best_ts,
                   Value& best_value,
                   const std::optional<Clock::time_point>& until);

  /// Runs the attempt/backoff/deadline loop for one operation.
  OpOutcome run_op(RegisterId reg, bool is_read, OpId op, Timestamp write_ts,
                   const Value& write_value, Timestamp& best_ts,
                   Value& best_value);

  net::ThreadTransport& transport_;
  NodeId self_;
  const quorum::QuorumSystem& quorums_;
  NodeId server_base_;
  util::Rng rng_;
  util::Rng retry_rng_;  ///< jitter stream, separate from quorum sampling
  bool monotone_;
  RetryPolicy retry_;

  OpId next_op_ = 1;
  std::unordered_map<RegisterId, Timestamp> write_ts_;
  std::unordered_map<RegisterId, TimestampedValue> monotone_cache_;
  std::uint64_t monotone_cache_hits_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t op_failures_ = 0;
  OpStatus last_status_ = OpStatus::kOk;
  util::OnlineStats read_latency_;
  util::OnlineStats write_latency_;

  struct Instruments {
    obs::Counter* reads = nullptr;
    obs::Counter* writes = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* degraded_reads = nullptr;
    obs::Counter* degraded_writes = nullptr;
    obs::Counter* op_failures = nullptr;
    obs::Histogram* read_latency = nullptr;
    obs::Histogram* write_latency = nullptr;
  };
  Instruments instruments_;
};

}  // namespace pqra::core
