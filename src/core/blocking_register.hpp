#pragma once

/// \file blocking_register.hpp
/// Blocking client for the real-threads runtime.
///
/// Same protocol as QuorumRegisterClient, written in direct style: the
/// calling thread sends the quorum requests and blocks on its mailbox until
/// the quorum has answered.  One client object per thread (it owns the
/// thread's NodeId mailbox); monotone caching is per client, matching the
/// per-process cache of §6.2.

#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/register_types.hpp"
#include "net/thread_transport.hpp"
#include "obs/metrics.hpp"
#include "quorum/quorum_system.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pqra::core {

struct BlockingReadResult {
  Timestamp ts = 0;
  Value value;
  bool from_monotone_cache = false;
};

class BlockingRegisterClient {
 public:
  /// \p metrics: optional thread-safe registry (non-owning); operation
  /// counts and wall-clock latency histograms (seconds) report under the
  /// same obs/names.hpp client names as the DES client.
  BlockingRegisterClient(net::ThreadTransport& transport, NodeId self,
                         const quorum::QuorumSystem& quorums,
                         NodeId server_base, const util::Rng& rng,
                         bool monotone = false,
                         obs::Registry* metrics = nullptr);

  /// Blocks until a read quorum answers.  Returns nullopt if the transport
  /// is closed mid-operation (shutdown).
  std::optional<BlockingReadResult> read(RegisterId reg);

  /// Blocks until a write quorum acks.  Returns the timestamp written, or
  /// nullopt on shutdown.  This client must be the register's only writer.
  std::optional<Timestamp> write(RegisterId reg, Value value);

  NodeId id() const { return self_; }
  std::uint64_t monotone_cache_hits() const { return monotone_cache_hits_; }

  /// Wall-clock operation latency in seconds, accumulated lock-free (the
  /// client is single-threaded by construction); merge across clients with
  /// util::OnlineStats::merge after the worker threads join.
  const util::OnlineStats& read_latency() const { return read_latency_; }
  const util::OnlineStats& write_latency() const { return write_latency_; }

 private:
  /// Collects acks for \p op until \p needed distinct servers answered.
  /// Returns false on transport shutdown.
  bool await_acks(OpId op, net::MsgType expected, std::size_t needed,
                  Timestamp& best_ts, Value& best_value);

  net::ThreadTransport& transport_;
  NodeId self_;
  const quorum::QuorumSystem& quorums_;
  NodeId server_base_;
  util::Rng rng_;
  bool monotone_;

  OpId next_op_ = 1;
  std::unordered_map<RegisterId, Timestamp> write_ts_;
  std::unordered_map<RegisterId, TimestampedValue> monotone_cache_;
  std::uint64_t monotone_cache_hits_ = 0;
  util::OnlineStats read_latency_;
  util::OnlineStats write_latency_;

  struct Instruments {
    obs::Counter* reads = nullptr;
    obs::Counter* writes = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Histogram* read_latency = nullptr;
    obs::Histogram* write_latency = nullptr;
  };
  Instruments instruments_;
};

}  // namespace pqra::core
