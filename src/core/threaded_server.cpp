#include "core/threaded_server.hpp"

#include <utility>

#include "util/check.hpp"

namespace pqra::core {

ThreadedServer::ThreadedServer(net::ThreadTransport& transport, NodeId self,
                               Replica preloaded, obs::Registry* metrics)
    : transport_(transport), self_(self), replica_(std::move(preloaded)) {
  if (metrics != nullptr) {
    PQRA_REQUIRE(metrics->mode() == obs::Concurrency::kThreadSafe,
                 "ThreadedServer needs a thread-safe registry");
    metrics_.emplace(*metrics);
  }
  thread_ = std::thread([this] { serve(); });
}

ThreadedServer::~ThreadedServer() {
  if (thread_.joinable()) thread_.join();
}

void ThreadedServer::serve() {
  for (;;) {
    std::optional<net::Envelope> env = transport_.recv(self_);
    if (!env.has_value()) return;  // transport closed
    std::uint64_t applied_before = replica_.writes_applied();
    net::Message reply = replica_.handle(env->msg);
    // Echo the causal headers (obs/span.hpp): span *emission* is DES-only,
    // but propagation works on both transports so flight-recorder dumps of
    // the threaded runtime still correlate messages to traces.
    reply.trace = env->msg.trace;
    reply.span = env->msg.span;
    if (metrics_.has_value()) {
      metrics_->requests->inc();
      metrics_->ts_advances->inc(replica_.writes_applied() - applied_before);
    }
    transport_.send(self_, env->from, reply);
  }
}

}  // namespace pqra::core
