#include "core/threaded_server.hpp"

#include <utility>

namespace pqra::core {

ThreadedServer::ThreadedServer(net::ThreadTransport& transport, NodeId self,
                               Replica preloaded)
    : transport_(transport), self_(self), replica_(std::move(preloaded)) {
  thread_ = std::thread([this] { serve(); });
}

ThreadedServer::~ThreadedServer() {
  if (thread_.joinable()) thread_.join();
}

void ThreadedServer::serve() {
  for (;;) {
    std::optional<net::Envelope> env = transport_.recv(self_);
    if (!env.has_value()) return;  // transport closed
    transport_.send(self_, env->from, replica_.handle(env->msg));
  }
}

}  // namespace pqra::core
