#pragma once

/// \file multi_writer_client.hpp
/// Multi-writer random register — the §8 "stronger registers" direction.
///
/// §8 notes that Malkhi et al. suggest building multi-writer registers out
/// of their single-writer quorum registers "by applying known register
/// implementation algorithms", and asks how *random* registers behave as
/// such building blocks.  This client implements the classic construction:
///
///   write(v): phase 1 — query a read quorum for the largest tag;
///             phase 2 — install (counter+1, writer_id) with the value at a
///             write quorum.
///   read():   query a read quorum, return the largest-tagged value.
///
/// Tags are (counter, writer-id) pairs packed into the wire timestamp so
/// that numeric comparison at the replicas orders them lexicographically —
/// the replica state machine is reused unchanged.
///
/// Over probabilistic quorums the phase-1 read may miss recent tags, so two
/// writers can reuse a counter; the writer id breaks the tie and [R2]-style
/// "every value read was written" still holds (tags stay unique).  What is
/// lost relative to a strict multi-writer register is write ordering — a
/// probabilistic trade documented and measured in the tests.

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "core/quorum_register_client.hpp"

namespace pqra::core {

/// Multi-writer tag: totally ordered, unique per (counter, writer).
struct Tag {
  std::uint64_t counter = 0;
  std::uint32_t writer = 0;

  friend bool operator==(const Tag&, const Tag&) = default;
  friend auto operator<=>(const Tag&, const Tag&) = default;
};

/// Packs a tag into a wire timestamp (counter in the high bits) so replica
/// max-timestamp semantics implement lexicographic tag comparison.
/// Counters are limited to 48 bits and writer ids to 16 — plenty for any
/// simulated run (both checked).
Timestamp pack_tag(const Tag& tag);
Tag unpack_tag(Timestamp ts);

struct MwReadResult {
  Tag tag;
  Value value;
  OpStatus status = OpStatus::kOk;
  std::size_t acks = 0;  ///< distinct servers that answered the final phase
};

struct MwWriteResult {
  Tag tag;
  OpStatus status = OpStatus::kOk;
  std::size_t acks = 0;

  /// Implicit on purpose: legacy write callbacks take the bare tag.
  operator Tag() const { return tag; }  // NOLINT(google-explicit-*)
};

class MultiWriterRegisterClient final : public net::Receiver {
 public:
  // Per-op completion callbacks: one type-erasure per client operation,
  // amortized over the two-phase quorum fan-out; per-event work uses
  // sim::EventFn.
  // pqra-lint: allow(hotpath-function) — per-op completion callback
  using ReadCallback = std::function<void(MwReadResult)>;
  /// MwWriteResult converts to Tag, so `[](Tag tag)` lambdas work.
  // pqra-lint: allow(hotpath-function) — per-op completion callback
  using WriteCallback = std::function<void(MwWriteResult)>;

  /// \p writer_id must be unique among all clients of the register and fit
  /// in 16 bits.
  /// \p retry: recovery policy (docs/FAULTS.md), applied per phase: each
  /// rpc_timeout re-sends the current phase to a fresh quorum; the deadline
  /// spans the whole operation.  A write still in its query phase at the
  /// deadline fails outright — only the install phase can degrade.
  MultiWriterRegisterClient(sim::Simulator& simulator,
                            net::Transport& transport, NodeId self,
                            std::uint32_t writer_id,
                            const quorum::QuorumSystem& quorums,
                            NodeId server_base, const util::Rng& rng,
                            bool monotone = false, RetryPolicy retry = {});

  void read(RegisterId reg, ReadCallback cb);

  /// Two-phase write; the callback reports the tag the value was written
  /// under.
  void write(RegisterId reg, Value value, WriteCallback cb);

  void on_message(NodeId from, net::Message msg) override;

  std::uint64_t reads_completed() const { return reads_completed_; }
  std::uint64_t writes_completed() const { return writes_completed_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t op_failures() const { return op_failures_; }

 private:
  enum class Phase : std::uint8_t { kRead, kWriteQuery, kWriteInstall };

  struct PendingOp {
    Phase phase = Phase::kRead;
    RegisterId reg = 0;
    std::size_t needed = 0;
    std::vector<NodeId> responders;
    Timestamp best_ts = 0;
    Value best_value;
    ReadCallback read_cb;
    WriteCallback write_cb;
    Value write_value;
    Timestamp install_ts = 0;
    std::uint32_t attempt = 0;
    bool has_deadline = false;
    sim::Time deadline_at = 0.0;
    OpStatus status = OpStatus::kOk;
  };

  void start_phase(OpId op, PendingOp& pending, Phase phase);
  void send_phase(OpId op, PendingOp& pending);
  void arm_retry(OpId op, std::uint32_t attempt);
  void arm_deadline(OpId op);
  void finish_deadline(OpId op, PendingOp& pending);
  void fail_op(OpId op, PendingOp& pending);
  void complete(OpId op, PendingOp& pending);

  sim::Simulator& simulator_;
  net::Transport& transport_;
  NodeId self_;
  std::uint32_t writer_id_;
  const quorum::QuorumSystem& quorums_;
  NodeId server_base_;
  util::Rng rng_;
  util::Rng retry_rng_;  ///< jitter stream, separate from quorum sampling
  bool monotone_;
  RetryPolicy retry_;

  OpId next_op_ = 1;
  std::vector<quorum::ServerId> quorum_scratch_;
  std::vector<net::FanoutEntry> fanout_scratch_;
  std::unordered_map<OpId, PendingOp> pending_;
  std::unordered_map<RegisterId, TimestampedValue> monotone_cache_;
  /// Largest counter this writer has ever used per register; guarantees its
  /// own tags increase even when phase-1 queries miss its previous writes.
  std::unordered_map<RegisterId, std::uint64_t> own_counter_;
  std::uint64_t reads_completed_ = 0;
  std::uint64_t writes_completed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t op_failures_ = 0;
};

}  // namespace pqra::core
