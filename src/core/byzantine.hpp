#pragma once

/// \file byzantine.hpp
/// Byzantine fault injection and the masking-quorum register client.
///
/// The paper (§4) simplifies Malkhi–Reiter's register "to assume only one
/// writer and absence of failures".  This module restores the fault model
/// that motivated probabilistic quorums in the first place: up to b replica
/// servers may lie arbitrarily.  The masking rule (Malkhi–Reiter–Wright):
/// a read accepts the highest-timestamped (ts, value) pair *vouched for by
/// at least b+1 distinct servers* — b colluding liars cannot fabricate such
/// a pair, and when the read quorum overlaps the write quorum in >= 2b+1
/// servers (probability 1 - masking_error_probability(n, k, b)), at least
/// b+1 correct servers vouch for the latest genuine write.

#include <functional>
#include <unordered_map>

#include "core/replica.hpp"
#include "core/register_types.hpp"
#include "net/transport.hpp"
#include "quorum/quorum_system.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace pqra::core {

/// How a Byzantine server lies.
enum class ByzantineMode : std::uint8_t {
  /// Fabricates a value with an enormous timestamp (the most dangerous lie:
  /// an unprotected client would always prefer it).  All fabricators in a
  /// run collude on the same (ts, value).
  kFabricateHighTs = 0,
  /// Always answers with the initial state (ts 0, empty) — a freshness
  /// attack, never a safety one.
  kStaleLie = 1,
  /// Returns the genuine timestamp but corrupted value bytes.
  kCorruptValue = 2,
};

/// A replica server that lies on reads (writes are acked but may be
/// dropped).  Byzantine behaviour only manifests in responses — the shared
/// Replica state machine is reused for the underlying (ignored) state.
class ByzantineServerProcess final : public net::Receiver {
 public:
  ByzantineServerProcess(net::Transport& transport, NodeId self,
                         ByzantineMode mode);

  void on_message(NodeId from, net::Message msg) override;

  NodeId id() const { return self_; }

 private:
  net::Transport& transport_;
  NodeId self_;
  ByzantineMode mode_;
  Replica replica_;
};

/// The (ts, value) all kFabricateHighTs servers collude on.
net::Message fabricated_read_ack(RegisterId reg, OpId op);

struct MaskedReadResult {
  /// False when no pair had b+1 vouchers (the read could not mask the
  /// faults; with retries the caller may simply try again).
  bool vouched = false;
  Timestamp ts = 0;
  Value value;
};

/// Read/write client applying the b-masking rule over any quorum system.
class MaskingRegisterClient final : public net::Receiver {
 public:
  // Per-op completion callbacks: constructed once per client operation and
  // amortized over the k-message quorum fan-out; the per-event fire path
  // stays on sim::EventFn.
  // pqra-lint: allow(hotpath-function) — per-op completion callback
  using ReadCallback = std::function<void(MaskedReadResult)>;
  // pqra-lint: allow(hotpath-function) — per-op completion callback
  using WriteCallback = std::function<void(Timestamp)>;

  MaskingRegisterClient(sim::Simulator& simulator, net::Transport& transport,
                        NodeId self, const quorum::QuorumSystem& quorums,
                        NodeId server_base, const util::Rng& rng,
                        std::size_t fault_bound);

  void read(RegisterId reg, ReadCallback cb);
  void write(RegisterId reg, Value value, WriteCallback cb);

  void on_message(NodeId from, net::Message msg) override;

  std::size_t fault_bound() const { return fault_bound_; }
  std::uint64_t unvouched_reads() const { return unvouched_reads_; }

 private:
  struct PendingOp {
    bool is_read = true;
    RegisterId reg = 0;
    std::size_t needed = 0;
    std::vector<NodeId> responders;
    /// All (ts, value) answers of a read, for the vouching count.
    std::vector<TimestampedValue> answers;
    ReadCallback read_cb;
    WriteCallback write_cb;
    Timestamp write_ts = 0;
  };

  void complete_read(OpId op, PendingOp& pending);

  sim::Simulator& simulator_;
  net::Transport& transport_;
  NodeId self_;
  const quorum::QuorumSystem& quorums_;
  NodeId server_base_;
  util::Rng rng_;
  std::size_t fault_bound_;

  OpId next_op_ = 1;
  std::unordered_map<OpId, PendingOp> pending_;
  std::unordered_map<RegisterId, Timestamp> write_ts_;
  std::uint64_t unvouched_reads_ = 0;
};

}  // namespace pqra::core
