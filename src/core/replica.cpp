#include "core/replica.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/codec.hpp"

namespace pqra::core {

net::Message Replica::handle(const net::Message& request) {
  switch (request.type) {
    case net::MsgType::kReadReq: {
      const TimestampedValue* entry = store_.find(request.reg);
      if (cross_key_probe_bug_) {
        // Seeded bug drill (set_test_cross_key_probe_bug): leak the
        // neighbouring key's entry when it is newer.
        const TimestampedValue* wrong = store_.find(request.reg ^ 1u);
        if (wrong != nullptr && (entry == nullptr || wrong->ts > entry->ts)) {
          entry = wrong;
        }
      }
      if (entry == nullptr) {
        return net::Message::read_ack(request.reg, request.op, 0,
                                      default_initial_);
      }
      return net::Message::read_ack(request.reg, request.op, entry->ts,
                                    entry->value);
    }
    case net::MsgType::kWriteReq: {
      TimestampedValue& slot = store_.entry(request.reg);
      if (request.ts > slot.ts) {
        slot.ts = request.ts;
        slot.value = request.value;
        ++writes_applied_;
        if (storage_ != nullptr) {
          storage_->on_apply(request.reg, slot.ts, slot.value);
        }
      }
      return net::Message::write_ack(request.reg, request.op, request.ts);
    }
    case net::MsgType::kReadAck:
    case net::MsgType::kWriteAck:
    case net::MsgType::kGossip:  // anti-entropy is driven via merge_store()
      break;
  }
  PQRA_CHECK(false, "replica received a non-request message");
}

void Replica::preload(RegisterId reg, Value value) {
  TimestampedValue& slot = store_.entry(reg);
  PQRA_REQUIRE(slot.ts == 0, "preload must happen before any write");
  slot.ts = 0;
  slot.value = std::move(value);
}

const TimestampedValue* Replica::get(RegisterId reg) const {
  return store_.find(reg);
}

Value Replica::encode_store() const {
  // Gossip payload bytes feed transport metrics and replay comparisons, so
  // the encoding must not depend on the table's insertion history: snapshot
  // the entries and emit them sorted by key id.
  std::vector<std::pair<RegisterId, const TimestampedValue*>> entries;
  entries.reserve(store_.size());
  store_.for_each([&entries](RegisterId reg, const TimestampedValue& tv) {
    entries.emplace_back(reg, &tv);
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  util::Bytes out;
  util::detail::append_raw(out, static_cast<std::uint64_t>(store_.size()));
  for (const auto& [reg, tv] : entries) {
    util::detail::append_raw(out, reg);
    util::detail::append_raw(out, tv->ts);
    util::detail::append_raw(out,
                             static_cast<std::uint64_t>(tv->value.size()));
    out.insert(out.end(), tv->value.begin(), tv->value.end());
  }
  return out;
}

std::size_t Replica::merge_store(const Value& encoded) {
  std::size_t advanced = 0;
  for (StoreEntry& entry : decode_store(encoded)) {
    TimestampedValue& slot = store_.entry(entry.reg);
    if (entry.ts > slot.ts) {
      slot.ts = entry.ts;
      slot.value = std::move(entry.value);
      ++advanced;
      if (storage_ != nullptr) {
        storage_->on_apply(entry.reg, slot.ts, slot.value);
      }
    }
  }
  return advanced;
}

void Replica::reset_store() { store_.clear(); }

void Replica::restore_entry(RegisterId reg, Timestamp ts, Value value) {
  TimestampedValue& slot = store_.entry(reg);
  // ts-max with >= : a snapshot entry and a WAL record for the same (reg,
  // ts) are the same apply, and replay order must not matter.
  if (ts >= slot.ts) {
    slot.ts = ts;
    slot.value = std::move(value);
  }
}

std::vector<Replica::StoreEntry> Replica::decode_store(const Value& encoded) {
  std::size_t off = 0;
  auto count = util::detail::read_raw<std::uint64_t>(encoded, off);
  std::vector<StoreEntry> entries;
  entries.reserve(count);
  for (std::uint64_t e = 0; e < count; ++e) {
    StoreEntry entry;
    entry.reg = util::detail::read_raw<RegisterId>(encoded, off);
    entry.ts = util::detail::read_raw<Timestamp>(encoded, off);
    auto len = util::detail::read_raw<std::uint64_t>(encoded, off);
    PQRA_CHECK(off + len <= encoded.size(), "store: truncated payload");
    entry.value = util::Bytes(
        encoded.begin() + static_cast<std::ptrdiff_t>(off),
        encoded.begin() + static_cast<std::ptrdiff_t>(off + len));
    off += len;
    entries.push_back(std::move(entry));
  }
  PQRA_CHECK(off == encoded.size(), "store: trailing bytes");
  return entries;
}

}  // namespace pqra::core
