#include "core/blocking_register.hpp"

#include <chrono>
#include <utility>

#include "obs/names.hpp"
#include "util/check.hpp"

namespace pqra::core {

namespace {

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BlockingRegisterClient::BlockingRegisterClient(
    net::ThreadTransport& transport, NodeId self,
    const quorum::QuorumSystem& quorums, NodeId server_base,
    const util::Rng& rng, bool monotone, obs::Registry* metrics)
    : transport_(transport),
      self_(self),
      quorums_(quorums),
      server_base_(server_base),
      rng_(rng.fork(0x626c6f636b000000ULL ^ self)),
      monotone_(monotone) {
  if (metrics != nullptr) {
    PQRA_REQUIRE(metrics->mode() == obs::Concurrency::kThreadSafe,
                 "BlockingRegisterClient needs a thread-safe registry");
    namespace n = obs::names;
    instruments_.reads = &metrics->counter(n::kClientReads, "Reads completed");
    instruments_.writes =
        &metrics->counter(n::kClientWrites, "Writes completed");
    instruments_.cache_hits = &metrics->counter(
        n::kClientCacheHits, "Reads served from the monotone cache (§6.2)");
    instruments_.read_latency = &metrics->histogram(
        n::kClientReadLatency, "Read latency, invocation to response");
    instruments_.write_latency = &metrics->histogram(
        n::kClientWriteLatency, "Write latency, invocation to response");
  }
}

bool BlockingRegisterClient::await_acks(OpId op, net::MsgType expected,
                                        std::size_t needed, Timestamp& best_ts,
                                        Value& best_value) {
  std::vector<NodeId> responders;
  while (responders.size() < needed) {
    std::optional<net::Envelope> env = transport_.recv(self_);
    if (!env.has_value()) return false;  // shutdown
    if (env->msg.op != op || env->msg.type != expected) {
      continue;  // stale ack from an earlier (completed) operation
    }
    bool duplicate = false;
    for (NodeId seen : responders) {
      if (seen == env->from) duplicate = true;
    }
    if (duplicate) continue;
    responders.push_back(env->from);
    if (expected == net::MsgType::kReadAck && env->msg.ts >= best_ts) {
      best_ts = env->msg.ts;
      best_value = std::move(env->msg.value);
    }
  }
  return true;
}

std::optional<BlockingReadResult> BlockingRegisterClient::read(RegisterId reg) {
  OpId op = next_op_++;
  const double started = wall_seconds();
  std::vector<quorum::ServerId> quorum =
      quorums_.sample(quorum::AccessKind::kRead, rng_);
  for (quorum::ServerId s : quorum) {
    transport_.send(self_, server_base_ + s, net::Message::read_req(reg, op));
  }
  Timestamp best_ts = 0;
  Value best_value;
  if (!await_acks(op, net::MsgType::kReadAck, quorum.size(), best_ts,
                  best_value)) {
    return std::nullopt;
  }

  BlockingReadResult result;
  result.ts = best_ts;
  result.value = std::move(best_value);
  if (monotone_) {
    TimestampedValue& cached = monotone_cache_[reg];
    if (cached.ts > result.ts) {
      result.ts = cached.ts;
      result.value = cached.value;
      result.from_monotone_cache = true;
      ++monotone_cache_hits_;
      if (instruments_.cache_hits != nullptr) instruments_.cache_hits->inc();
    } else {
      cached.ts = result.ts;
      cached.value = result.value;
    }
  }
  const double elapsed = wall_seconds() - started;
  read_latency_.add(elapsed);
  if (instruments_.reads != nullptr) instruments_.reads->inc();
  if (instruments_.read_latency != nullptr) {
    instruments_.read_latency->observe(elapsed);
  }
  return result;
}

std::optional<Timestamp> BlockingRegisterClient::write(RegisterId reg,
                                                       Value value) {
  OpId op = next_op_++;
  const double started = wall_seconds();
  Timestamp ts = ++write_ts_[reg];
  std::vector<quorum::ServerId> quorum =
      quorums_.sample(quorum::AccessKind::kWrite, rng_);
  for (quorum::ServerId s : quorum) {
    transport_.send(self_, server_base_ + s,
                    net::Message::write_req(reg, op, ts, value));
  }
  Timestamp unused_ts = 0;
  Value unused_value;
  if (!await_acks(op, net::MsgType::kWriteAck, quorum.size(), unused_ts,
                  unused_value)) {
    return std::nullopt;
  }
  const double elapsed = wall_seconds() - started;
  write_latency_.add(elapsed);
  if (instruments_.writes != nullptr) instruments_.writes->inc();
  if (instruments_.write_latency != nullptr) {
    instruments_.write_latency->observe(elapsed);
  }
  return ts;
}

}  // namespace pqra::core
