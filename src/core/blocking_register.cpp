#include "core/blocking_register.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/names.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace pqra::core {

namespace {

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::chrono::steady_clock::duration seconds_duration(double s) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(s));
}

}  // namespace

BlockingRegisterClient::BlockingRegisterClient(
    net::ThreadTransport& transport, NodeId self,
    const quorum::QuorumSystem& quorums, NodeId server_base,
    const util::Rng& rng, bool monotone, obs::Registry* metrics,
    RetryPolicy retry)
    : transport_(transport),
      self_(self),
      quorums_(quorums),
      server_base_(server_base),
      rng_(rng.fork(0x626c6f636b000000ULL ^ self)),
      retry_rng_(rng.fork(0x7265747279000000ULL ^ self)),
      monotone_(monotone),
      retry_(retry) {
  if (metrics != nullptr) {
    PQRA_REQUIRE(metrics->mode() == obs::Concurrency::kThreadSafe,
                 "BlockingRegisterClient needs a thread-safe registry");
    namespace n = obs::names;
    instruments_.reads = &metrics->counter(n::kClientReads, "Reads completed");
    instruments_.writes =
        &metrics->counter(n::kClientWrites, "Writes completed");
    instruments_.cache_hits = &metrics->counter(
        n::kClientCacheHits, "Reads served from the monotone cache (§6.2)");
    instruments_.retries = &metrics->counter(
        n::kClientRetries, "Operations retried on a fresh quorum");
    instruments_.degraded_reads = &metrics->counter(
        n::kClientDegradedReads,
        "Reads completed on a partial access set at the deadline");
    instruments_.degraded_writes = &metrics->counter(
        n::kClientDegradedWrites,
        "Writes completed on a partial access set at the deadline");
    instruments_.op_failures = &metrics->counter(
        n::kClientOpFailures, "Operations that timed out outright");
    instruments_.read_latency = &metrics->histogram(
        n::kClientReadLatency, "Read latency, invocation to response");
    instruments_.write_latency = &metrics->histogram(
        n::kClientWriteLatency, "Write latency, invocation to response");
  }
}

BlockingRegisterClient::Await BlockingRegisterClient::await_acks(
    OpId op, net::MsgType expected, std::size_t needed,
    std::vector<NodeId>& responders, Timestamp& best_ts, Value& best_value,
    const std::optional<Clock::time_point>& until) {
  while (responders.size() < needed) {
    std::optional<net::Envelope> env =
        until.has_value() ? transport_.recv_until(self_, *until)
                          : transport_.recv(self_);
    if (!env.has_value()) {
      return transport_.closed() ? Await::kShutdown : Await::kTimeout;
    }
    if (env->msg.op != op || env->msg.type != expected) {
      continue;  // stale ack from an earlier (completed) operation
    }
    bool duplicate = false;
    for (NodeId seen : responders) {
      if (seen == env->from) duplicate = true;
    }
    if (duplicate) continue;
    responders.push_back(env->from);
    if (expected == net::MsgType::kReadAck && env->msg.ts >= best_ts) {
      best_ts = env->msg.ts;
      best_value = std::move(env->msg.value);
    }
  }
  return Await::kDone;
}

BlockingRegisterClient::OpOutcome BlockingRegisterClient::run_op(
    RegisterId reg, bool is_read, OpId op, Timestamp write_ts,
    const Value& write_value, Timestamp& best_ts, Value& best_value) {
  const auto kind =
      is_read ? quorum::AccessKind::kRead : quorum::AccessKind::kWrite;
  const net::MsgType expected =
      is_read ? net::MsgType::kReadAck : net::MsgType::kWriteAck;
  const std::size_t needed = quorums_.quorum_size(kind);

  std::optional<Clock::time_point> deadline_at;
  if (retry_.deadline.has_value()) {
    deadline_at = Clock::now() + seconds_duration(*retry_.deadline);
  }

  std::vector<NodeId> responders;
  std::uint32_t attempt = 0;
  for (;;) {
    // Each attempt contacts a freshly sampled quorum; acks accumulate across
    // attempts under the same op id.
    std::vector<quorum::ServerId> quorum = quorums_.sample(kind, rng_);
    for (quorum::ServerId s : quorum) {
      NodeId server = server_base_ + s;
      if (is_read) {
        transport_.send(self_, server, net::Message::read_req(reg, op));
      } else {
        transport_.send(self_, server,
                        net::Message::write_req(reg, op, write_ts,
                                                write_value));
      }
    }

    std::optional<Clock::time_point> until = deadline_at;
    if (retry_.rpc_timeout.has_value()) {
      double wait = retry_.backoff(attempt, retry_rng_);
      Clock::time_point attempt_until = Clock::now() + seconds_duration(wait);
      until = until.has_value() ? std::min(*until, attempt_until)
                                : attempt_until;
    }

    Await out = await_acks(op, expected, needed, responders, best_ts,
                           best_value, until);
    if (out == Await::kDone) {
      return OpOutcome{OpStatus::kOk, responders.size()};
    }
    if (out == Await::kShutdown) {
      return OpOutcome{OpStatus::kShutdown, responders.size()};
    }
    const bool deadline_hit =
        deadline_at.has_value() && Clock::now() >= *deadline_at;
    if (deadline_hit || !retry_.rpc_timeout.has_value()) {
      // Out of budget (or no retries configured at all): settle.
      if (retry_.degraded_ok &&
          responders.size() >=
              std::max<std::size_t>(retry_.min_degraded_acks, 1)) {
        return OpOutcome{OpStatus::kDegraded, responders.size()};
      }
      return OpOutcome{OpStatus::kTimedOut, responders.size()};
    }
    ++attempt;
    ++retries_;
    if (instruments_.retries != nullptr) instruments_.retries->inc();
  }
}

std::optional<BlockingReadResult> BlockingRegisterClient::read(RegisterId reg) {
  OpId op = next_op_++;
  const double started = wall_seconds();
  Timestamp best_ts = 0;
  Value best_value;
  OpOutcome outcome =
      run_op(reg, /*is_read=*/true, op, 0, Value{}, best_ts, best_value);
  last_status_ = outcome.status;
  if (outcome.status == OpStatus::kShutdown) return std::nullopt;
  if (outcome.status == OpStatus::kTimedOut) {
    ++op_failures_;
    if (instruments_.op_failures != nullptr) instruments_.op_failures->inc();
    return std::nullopt;
  }

  BlockingReadResult result;
  result.ts = best_ts;
  result.value = std::move(best_value);
  result.status = outcome.status;
  result.acks = outcome.acks;
  if (outcome.status == OpStatus::kDegraded) {
    result.staleness_bound = util::asymmetric_nonoverlap_probability(
        quorums_.num_servers(),
        quorums_.quorum_size(quorum::AccessKind::kWrite), outcome.acks);
    if (instruments_.degraded_reads != nullptr) {
      instruments_.degraded_reads->inc();
    }
  }
  if (monotone_) {
    TimestampedValue& cached = monotone_cache_[reg];
    if (cached.ts > result.ts) {
      result.ts = cached.ts;
      result.value = cached.value;
      result.from_monotone_cache = true;
      ++monotone_cache_hits_;
      if (instruments_.cache_hits != nullptr) instruments_.cache_hits->inc();
    } else {
      cached.ts = result.ts;
      cached.value = result.value;
    }
  }
  const double elapsed = wall_seconds() - started;
  read_latency_.add(elapsed);
  if (instruments_.reads != nullptr) instruments_.reads->inc();
  if (instruments_.read_latency != nullptr) {
    instruments_.read_latency->observe(elapsed);
  }
  return result;
}

std::optional<Timestamp> BlockingRegisterClient::write(RegisterId reg,
                                                       Value value) {
  OpId op = next_op_++;
  const double started = wall_seconds();
  Timestamp ts = ++write_ts_[reg];
  Timestamp unused_ts = 0;
  Value unused_value;
  OpOutcome outcome =
      run_op(reg, /*is_read=*/false, op, ts, value, unused_ts, unused_value);
  last_status_ = outcome.status;
  if (outcome.status == OpStatus::kShutdown) return std::nullopt;
  if (outcome.status == OpStatus::kTimedOut) {
    ++op_failures_;
    if (instruments_.op_failures != nullptr) instruments_.op_failures->inc();
    return std::nullopt;
  }
  if (outcome.status == OpStatus::kDegraded &&
      instruments_.degraded_writes != nullptr) {
    instruments_.degraded_writes->inc();
  }
  const double elapsed = wall_seconds() - started;
  write_latency_.add(elapsed);
  if (instruments_.writes != nullptr) instruments_.writes->inc();
  if (instruments_.write_latency != nullptr) {
    instruments_.write_latency->observe(elapsed);
  }
  return ts;
}

}  // namespace pqra::core
