#include "core/keyspace/sharded_store.hpp"

#include <utility>

#include "obs/names.hpp"
#include "util/check.hpp"

namespace pqra::core::keyspace {

namespace {

ClientOptions with_ring(ClientOptions options, const HashRing& ring) {
  options.ring = &ring;
  return options;
}

}  // namespace

ShardedStoreClient::ShardedStoreClient(sim::Simulator& simulator,
                                       net::Transport& transport, NodeId self,
                                       const HashRing& ring,
                                       const quorum::QuorumSystem& quorums,
                                       const util::Rng& rng,
                                       ShardedStoreOptions options,
                                       spec::HistoryRecorder* history)
    : replicas_per_key_(quorums.num_servers()),
      client_(simulator, transport, self, quorums, /*server_base=*/0, rng,
              with_ring(options.client, ring), history) {
  PQRA_REQUIRE(replicas_per_key_ <= ring.num_nodes(),
               "replica group cannot exceed the ring membership");
  if (options.client.metrics != nullptr) {
    obs::Registry& reg = *options.client.metrics;
    namespace n = obs::names;
    gets_ = &reg.counter(n::kStoreGets, "Sharded-store gets started");
    puts_ = &reg.counter(n::kStorePuts, "Sharded-store puts started");
    // Shards merge with kSum: each parallel run's registry counts its own
    // clients' distinct keys, and the aggregate reports the total across
    // (run, client) pairs — deterministic in any merge order.
    keys_gauge_ = &reg.gauge(n::kStoreKeysTouched,
                             "Distinct keys touched, summed over clients",
                             obs::GaugeMerge::kSum);
  }
}

void ShardedStoreClient::touch(KeyId key) {
  const std::size_t before = touched_.size();
  touched_.entry(key) = 1;
  if (touched_.size() != before && keys_gauge_ != nullptr) {
    keys_gauge_->add(1.0);
  }
}

void ShardedStoreClient::get(KeyId key, QuorumRegisterClient::ReadCallback cb) {
  touch(key);
  if (gets_ != nullptr) gets_->inc();
  client_.read(key, std::move(cb));
}

void ShardedStoreClient::put(KeyId key, Value value,
                             QuorumRegisterClient::WriteCallback cb) {
  touch(key);
  if (puts_ != nullptr) puts_->inc();
  client_.write(key, std::move(value), std::move(cb));
}

}  // namespace pqra::core::keyspace
