#pragma once

/// \file hash_ring.hpp
/// Consistent-hash ring with virtual nodes: KeyId -> n-replica group.
///
/// The sharded store (docs/SHARDING.md) runs the paper's probabilistic
/// quorum protocol *per key* over a small replica group instead of the
/// whole cluster.  The ring decides, deterministically and identically on
/// every process, which group that is: each server owns `vnodes_per_node`
/// positions on a 64-bit circle, a key hashes to a position, and its group
/// is the first n distinct servers clockwise from there.
///
/// Determinism is load-bearing: clients, servers, the fuzzer and the spec
/// checkers all derive the same group from (members, vnodes, key), so the
/// positions come from a fixed splitmix64-style mixer — never std::hash,
/// whose value is implementation-defined and may differ across libstdc++
/// versions (the determinism contract of docs/STATIC_ANALYSIS.md).
///
/// Membership edits (add_node/remove_node) re-sort the position table and
/// are control-plane operations; lookups are what runs in the DES hot path
/// and they neither allocate (replica_group fills caller scratch) nor
/// block.

#include <cstdint>
#include <vector>

#include "net/message.hpp"

namespace pqra::core::keyspace {

using net::KeyId;
using net::NodeId;

/// splitmix64 finalizer: a fixed, avalanche-quality 64-bit mixer.  Shared
/// by ring positions and the flat store's probe hash so every process
/// agrees on both byte-for-byte.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class HashRing {
 public:
  /// \p vnodes_per_node: ring positions per member.  More virtual nodes
  /// flatten the load imbalance (stddev ~ 1/sqrt(vnodes)) at the price of a
  /// longer table; tests/core/keyspace_test.cpp pins the balance bound.
  explicit HashRing(std::size_t vnodes_per_node = 16);

  /// Inserts \p node's virtual nodes.  Idempotent calls are a bug
  /// (PQRA_REQUIRE): membership is a set.
  void add_node(NodeId node);
  void remove_node(NodeId node);
  bool contains(NodeId node) const;

  std::size_t num_nodes() const { return members_.size(); }
  std::size_t vnodes_per_node() const { return vnodes_; }

  /// Bumped on every membership edit.  Resolution caches (the register
  /// client's replica-group cache) key their validity on this, so cached
  /// groups survive exactly as long as the membership they were computed
  /// from.
  std::uint64_t version() const { return version_; }

  /// The key's first owner clockwise of its hash position.
  NodeId primary(KeyId key) const;

  /// Fills \p out with the first \p n distinct owners clockwise of the
  /// key's position — the key's replica group, in ring order.  Requires
  /// 1 <= n <= num_nodes().  Allocation-free once \p out has capacity n
  /// (hot-path contract; see file comment).
  void replica_group(KeyId key, std::size_t n, std::vector<NodeId>& out) const;

  /// Position of \p key on the circle (exposed for the movement tests).
  static std::uint64_t key_position(KeyId key) {
    // Salted so a key and a same-valued (node, vnode) pair never collide by
    // construction.
    return mix64(0x6b65795fULL ^ (static_cast<std::uint64_t>(key) << 1));
  }

 private:
  struct VNode {
    std::uint64_t pos = 0;
    NodeId node = 0;
  };

  std::size_t vnodes_;
  std::vector<VNode> ring_;       ///< sorted by (pos, node)
  std::vector<NodeId> members_;   ///< sorted
  std::uint64_t version_ = 0;
};

}  // namespace pqra::core::keyspace
