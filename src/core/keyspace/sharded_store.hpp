#pragma once

/// \file sharded_store.hpp
/// Client facade of the sharded multi-key register store.
///
/// A ShardedStoreClient is the paper's probabilistic-quorum register client
/// run independently per key (docs/SHARDING.md): get/put on KeyId k resolve
/// k's n-replica group through the consistent-hash ring and run §4's
/// read/write protocol against a quorum sampled *inside that group*.  All
/// per-register client state — writer timestamps, the §6.2 monotone cache,
/// staleness tracking — is already keyed by register id in
/// QuorumRegisterClient, and a key IS a register (net::KeyId), so the
/// facade adds only the ring resolution (via ClientOptions::ring), the
/// single-writer-per-key discipline, and store-level metrics.
///
/// ε-intersection is a *per-key* guarantee in this regime: two quorums of
/// size k drawn from the same n-member group intersect with the usual
/// probability bound over n = group size, independent of cluster size or of
/// any other key's traffic (docs/SHARDING.md works the numbers).

#include <cstdint>

#include "core/keyspace/flat_table.hpp"
#include "core/keyspace/hash_ring.hpp"
#include "core/quorum_register_client.hpp"

namespace pqra::core::keyspace {

struct ShardedStoreOptions {
  /// Per-key protocol options.  `ring` is set by the store constructor;
  /// metrics/trace/spans/retry/monotone/read_repair pass through to the
  /// underlying client unchanged.
  ClientOptions client;
};

class ShardedStoreClient {
 public:
  /// \p ring must outlive the store; \p quorums must be sized to one
  /// replica group (quorums.num_servers() == replicas per key <=
  /// ring.num_nodes()).
  ShardedStoreClient(sim::Simulator& simulator, net::Transport& transport,
                     NodeId self, const HashRing& ring,
                     const quorum::QuorumSystem& quorums, const util::Rng& rng,
                     ShardedStoreOptions options = {},
                     spec::HistoryRecorder* history = nullptr);

  /// Reads key \p key through a quorum of its replica group.
  void get(KeyId key, QuorumRegisterClient::ReadCallback cb);

  /// Writes key \p key.  This client must be the key's only writer
  /// (single-writer-per-key ownership; the workload layer assigns keys to
  /// writers, e.g. key % num_clients in experiment_cli's store app).
  void put(KeyId key, Value value, QuorumRegisterClient::WriteCallback cb);

  /// Distinct keys this client has touched (gets + puts).
  std::size_t keys_touched() const { return touched_.size(); }

  const ClientCounters& counters() const { return client_.counters(); }
  Timestamp last_written_ts(KeyId key) const {
    return client_.last_written_ts(key);
  }
  NodeId id() const { return client_.id(); }

  /// The per-key protocol client, for latency stats and advanced use.
  QuorumRegisterClient& register_client() { return client_; }

 private:
  void touch(KeyId key);

  std::size_t replicas_per_key_;
  FlatTable<std::uint8_t> touched_;
  obs::Counter* gets_ = nullptr;
  obs::Counter* puts_ = nullptr;
  obs::Gauge* keys_gauge_ = nullptr;
  QuorumRegisterClient client_;
};

}  // namespace pqra::core::keyspace
