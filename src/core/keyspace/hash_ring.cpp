#include "core/keyspace/hash_ring.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pqra::core::keyspace {

namespace {

std::uint64_t vnode_position(NodeId node, std::size_t index) {
  // Node and vnode index packed into disjoint bit ranges, then mixed; the
  // low bit 1 keeps node positions off every key position (key_position
  // shifts keys left, so key hashes have a 0 low input bit).
  return mix64((static_cast<std::uint64_t>(node) << 24) |
               (static_cast<std::uint64_t>(index) << 1) | 1ULL);
}

}  // namespace

HashRing::HashRing(std::size_t vnodes_per_node) : vnodes_(vnodes_per_node) {
  PQRA_REQUIRE(vnodes_ >= 1, "a ring member needs at least one virtual node");
}

void HashRing::add_node(NodeId node) {
  PQRA_REQUIRE(!contains(node), "node is already a ring member");
  members_.insert(std::lower_bound(members_.begin(), members_.end(), node),
                  node);
  ring_.reserve(ring_.size() + vnodes_);
  for (std::size_t i = 0; i < vnodes_; ++i) {
    ring_.push_back(VNode{vnode_position(node, i), node});
  }
  std::sort(ring_.begin(), ring_.end(), [](const VNode& a, const VNode& b) {
    return a.pos != b.pos ? a.pos < b.pos : a.node < b.node;
  });
  ++version_;
}

void HashRing::remove_node(NodeId node) {
  PQRA_REQUIRE(contains(node), "node is not a ring member");
  members_.erase(std::lower_bound(members_.begin(), members_.end(), node));
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [node](const VNode& v) { return v.node == node; }),
              ring_.end());
  ++version_;
}

bool HashRing::contains(NodeId node) const {
  return std::binary_search(members_.begin(), members_.end(), node);
}

NodeId HashRing::primary(KeyId key) const {
  PQRA_REQUIRE(!members_.empty(), "ring has no members");
  const std::uint64_t pos = key_position(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), pos,
      [](const VNode& v, std::uint64_t p) { return v.pos < p; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the circle
  return it->node;
}

void HashRing::replica_group(KeyId key, std::size_t n,
                             std::vector<NodeId>& out) const {
  PQRA_REQUIRE(n >= 1 && n <= members_.size(),
               "replica group size must be in [1, num_nodes]");
  out.clear();
  const std::uint64_t pos = key_position(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), pos,
      [](const VNode& v, std::uint64_t p) { return v.pos < p; });
  // Walk clockwise collecting distinct owners; the group is tiny (n <= a
  // handful of replicas), so the linear dedup scan beats any set.
  for (std::size_t step = 0; step < ring_.size() && out.size() < n; ++step) {
    if (it == ring_.end()) it = ring_.begin();
    const NodeId node = it->node;
    bool seen = false;
    for (const NodeId m : out) seen = seen || (m == node);
    if (!seen) out.push_back(node);
    ++it;
  }
  PQRA_CHECK(out.size() == n, "ring walk must find n distinct members");
}

}  // namespace pqra::core::keyspace
