#pragma once

/// \file flat_table.hpp
/// Flat open-addressing KeyId -> V table for replica stores.
///
/// std::unordered_map is banned from anything whose iteration order can
/// reach bytes, metrics or traces (the unordered-iter lint rule), and its
/// per-node allocations are exactly what the DES hot path must avoid.  This
/// table is the sanctioned replacement for the multi-key store
/// (docs/SHARDING.md): linear-probe open addressing over one contiguous
/// slot array, power-of-two capacity, fixed splitmix64-style probe hash
/// (hash_ring.hpp's mix64 — never std::hash), so slot order is a pure
/// function of the insertion history and identical on every process.
///
/// find() never allocates; insertion allocates only when the table grows
/// (amortized, load factor capped at ~0.7), which carries the same inline
/// escape as sim::EventArena's chunk growth.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/keyspace/hash_ring.hpp"
#include "util/check.hpp"

namespace pqra::core::keyspace {

template <typename V>
class FlatTable {
 public:
  /// Pointer to the value stored for \p key, nullptr if absent.
  V* find(KeyId key) {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask()) {
      Slot& s = slots_[i];
      if (!s.used) return nullptr;
      if (s.key == key) return &s.value;
    }
  }
  const V* find(KeyId key) const {
    return const_cast<FlatTable*>(this)->find(key);
  }

  /// The value slot for \p key, inserted default-constructed if absent
  /// (unlike std::map::at, which throws).
  V& entry(KeyId key) {
    if (size_ + 1 > (slots_.size() * 7) / 10) grow();
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask()) {
      Slot& s = slots_[i];
      if (s.used && s.key == key) return s.value;
      if (!s.used) {
        s.used = true;
        s.key = key;
        ++size_;
        return s.value;
      }
    }
  }

  /// Pre-sizes the slot array so \p n entries insert without any amortized
  /// rehash (bulk preloads: a 10⁵-key store otherwise pays a dozen full
  /// rehashes per replica before the first event fires).
  void reserve(std::size_t n) {
    std::size_t cap = slots_.empty() ? 16 : slots_.size();
    while ((cap * 7) / 10 < n) cap *= 2;
    if (cap > slots_.size()) rehash(cap);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Drops every entry but keeps the slot array's capacity: recovery
  /// (Replica::reset_store) clears and immediately re-inserts roughly the
  /// same key set, so freeing the array would only buy a rehash chain.
  void clear() {
    for (Slot& s : slots_) {
      if (s.used) {
        s.used = false;
        s.key = 0;
        s.value = V{};
      }
    }
    size_ = 0;
  }

  /// Visits every entry as (KeyId, const V&) in slot order.  Slot order is
  /// deterministic (see file comment) but NOT sorted: callers whose output
  /// feeds bytes or text must sort what they collect (Replica::encode_store
  /// does).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    KeyId key = 0;
    bool used = false;
    V value{};
  };

  std::size_t mask() const { return slots_.size() - 1; }

  std::size_t probe_start(KeyId key) const {
    return static_cast<std::size_t>(mix64(key)) & mask();
  }

  void grow() { rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void rehash(std::size_t capacity) {
    // Amortized rehash, the table's only allocation: same sanctioned escape
    // as sim::EventArena chunk growth (docs/STATIC_ANALYSIS.md).
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    size_ = 0;
    for (Slot& s : old) {
      if (s.used) entry(s.key) = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace pqra::core::keyspace
