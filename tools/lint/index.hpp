#pragma once

/// \file index.hpp
/// Pass 1: per-file indexing behind a content-hash cache.
///
/// For every source file the indexer extracts, in one tokenizer pass, all
/// the structure the later passes need — so passes 2 and 3 never touch
/// source text again, and an unchanged file re-indexes for free out of the
/// cache (tools/lint/index.cpp, serialized form documented there):
///
///   - quoted #include targets (the project include graph)
///   - names declared with an unordered container type (unordered-iter)
///   - inline `// pqra-lint: allow(...)` escapes by line
///   - an approximate symbol table: function and method definitions,
///     lambdas (attributed to their enclosing function; lambdas passed to a
///     Simulator scheduler are marked as event bodies), and one pseudo-node
///     per class for class-scope declarations
///   - qualified call sites (virtual dispatch over-approximated by name)
///   - hot-path facts: every std::function / new / make_unique / malloc /
///     blocking-primitive occurrence, attributed to its enclosing function
///   - token facts for the file-local rules (determinism-rng/clock,
///     metric-name) and iteration sites for unordered-iter
///   - a per-function statement stream for the taint pass: assignments,
///     returns, nondeterminism sources, output sinks, calls, sanitizers
///
/// Everything recorded here is configuration-independent: which facts turn
/// into diagnostics is decided by the passes, so a config edit never
/// invalidates the cache.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common.hpp"

namespace pqra_lint {

struct FuncDef {
  std::string name;        // unqualified ("" for class pseudo-nodes)
  std::string qual;        // "Class::name", plain name, or "<lambda f:l>"
  std::string class_name;  // enclosing (or qualifying) class, "" if none
  int line_begin = 0;
  int line_end = 0;
  int parent = -1;           // enclosing function index (lambdas), else -1
  bool is_lambda = false;
  bool is_event_body = false;  // lambda passed to a scheduler call
  bool is_class_scope = false;  // pseudo-node for class-body declarations
  std::vector<std::string> stream_params;  // params of ostream-ish type
};

struct CallSite {
  int func = -1;  // index into FileIndex::funcs; -1 = file scope
  int line = 0;
  std::string callee;       // unqualified name
  std::string qual_prefix;  // "Class" when written Class::callee, else ""
  bool member = false;      // x.callee / x->callee
};

/// One banned-construct occurrence for the hotpath-* family.
/// rule: 'f' hotpath-function, 'a' hotpath-alloc, 'b' hotpath-blocking.
/// variant (alloc): 'n' `new`, 'm' make_unique/make_shared, 'c' libc call.
struct HotFact {
  int func = -1;
  int line = 0;
  char rule = 'a';
  char variant = 'n';
  std::string detail;  // construct name: "new", "make_unique", "mutex", ...
};

/// File-local token-rule occurrence.  rule: 'r' determinism-rng,
/// 'c' determinism-clock, 'm' metric-name; variant: 'i' banned identifier,
/// 'c' libc free call ('i' unused for metric-name).
struct TokenFact {
  int line = 0;
  char rule = 'r';
  char variant = 'i';
  std::string detail;
};

/// Candidate unordered-container iteration.  form: 'r' range-for (idents =
/// every identifier in the range expression, in token order), 'w' iterator
/// walk (idents = the single container name).  The unordered-iter pass
/// flags the first ident that resolves to an unordered-declared name in
/// this file's transitive include closure.
struct IterSite {
  char form = 'r';
  std::vector<std::pair<std::string, int>> idents;  // (name, line)
};

/// Taint sources.  kind: 'h' hash order, 'p' pointer identity, 'c' wall
/// clock.  detail is the human-readable construct ("std::hash", ...).
struct TaintSource {
  char kind = 'h';
  int line = 0;
  std::string detail;
};

/// One statement relevant to taint propagation (statements with no
/// assignment, return, source, sink or call are dropped at index time).
/// sinks: 'e' Codec encode, 'g' fingerprint accumulation, 'o' obs::
/// emitter, 's' ostream write, 'p' printf-family output.
struct Stmt {
  int func = -1;
  int line = 0;
  bool is_range_for = false;  // lhs = loop variable, idents = range expr
  bool is_return = false;
  bool sanitize = false;      // std::sort/stable_sort over its idents
  std::string lhs;            // assigned identifier, "" if none
  std::vector<std::string> idents;
  std::vector<TaintSource> sources;
  std::string sinks;               // set of sink kind chars, sorted
  std::vector<std::string> calls;  // callee names (unqualified)
};

struct FileIndex {
  std::string path;
  std::uint64_t hash = 0;
  std::vector<std::string> includes;
  std::set<std::string> unordered_names;
  std::map<int, std::set<std::string>> escapes;
  std::vector<FuncDef> funcs;
  std::vector<CallSite> calls;
  std::vector<HotFact> hot_facts;
  std::vector<TokenFact> token_facts;
  std::vector<IterSite> iter_sites;
  std::vector<Stmt> stmts;

  /// True when an inline escape covers \p rule on \p line (an escape also
  /// covers the following line).
  bool escaped(const std::string& rule, int line) const;
};

/// Tokenizes and indexes one file.  \p schedulers marks which call names
/// make a lambda argument an event body (CallGraphConfig::schedulers).
FileIndex build_index(const std::string& path, const std::string& contents,
                      const std::vector<std::string>& schedulers);

// ---------------------------------------------------------------------------
// Cache: one text file, entries keyed by (path, content hash).  The loader
// drops the whole file on a format-version or tool-version mismatch; the
// scheduler-config hash is folded into the version line because event-body
// marking happens at index time.
// ---------------------------------------------------------------------------

struct IndexCache {
  std::map<std::string, FileIndex> entries;  // keyed by normalized path

  /// Returns the cached index for (path, hash), or nullptr on miss.
  const FileIndex* lookup(const std::string& path, std::uint64_t hash) const;
  void put(FileIndex idx);
};

bool load_cache(const std::string& file, std::uint64_t config_token,
                IndexCache& cache);
bool save_cache(const std::string& file, std::uint64_t config_token,
                const IndexCache& cache);

}  // namespace pqra_lint
