#pragma once

/// \file common.hpp
/// Shared vocabulary for the pqra_lint passes (docs/STATIC_ANALYSIS.md).
///
/// pqra_lint v2 is a multi-pass analyzer split across five modules:
///
///   index.*      pass 1 — tokenizer + per-file indexing (symbols, calls,
///                facts, taint statements) behind a content-hash cache
///   callgraph.*  pass 2 — project-wide call graph; re-bases the hotpath-*
///                rules on reachability from the DES fire loop
///   taint.*      pass 3 — nondeterminism-taint source→sink propagation
///   rules.cpp    the per-file token rules carried over from v1, plus the
///                include-closure unordered-iter pass
///   main.cpp     driver: file walk, parallel scan, cache, --sarif/--diff
///
/// This header holds the types every module speaks: tokens, configuration,
/// violations and the rule catalogue.  Exit status contract (unchanged from
/// v1): 0 clean, 1 violations found, 2 usage/configuration error.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace pqra_lint {

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kPunct, kString, kNumber };

struct Token {
  TokKind kind;
  std::string text;  // for kString: the literal's *contents*, unescaped-ish
  int line;
};

// ---------------------------------------------------------------------------
// Configuration (.pqra-lint.toml)
// ---------------------------------------------------------------------------

struct RuleConfig {
  std::vector<std::string> allow;  // path globs exempt from the rule
  std::vector<std::string> paths;  // if non-empty, rule only applies here
};

/// [callgraph]: the reachability pass.  Roots are qualified-name suffixes
/// ("Simulator::run", or an unqualified free-function name); every function
/// defined in a hotpath-* `paths` file and every lambda passed to one of
/// `schedulers` is a root implicitly.  `scope` limits which files the
/// transitive findings may land in; `allow` exempts files (the threaded
/// runtime) with a justification comment in the config.
struct CallGraphConfig {
  std::vector<std::string> roots;
  std::vector<std::string> schedulers = {"schedule_in", "schedule_at",
                                         "schedule_at_seq", "schedule_batch"};
  std::vector<std::string> scope;
  std::vector<std::string> allow;
};

struct Config {
  std::vector<std::string> extensions = {".cpp", ".hpp", ".cc", ".h"};
  std::map<std::string, RuleConfig> rules;
  CallGraphConfig callgraph;
};

/// Loads \p file.  On failure returns false with \p err =
/// "<file>:<line>: <reason>" (or "<file>: <reason>" for open errors) — the
/// driver turns any config failure into a hard exit 2, never a clean scan.
bool load_config(const std::string& file, Config& cfg, std::string& err);

// ---------------------------------------------------------------------------
// Violations and the rule catalogue
// ---------------------------------------------------------------------------

struct Violation {
  std::string path;
  int line;
  std::string rule;
  std::string message;
  std::string hint;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

const std::vector<RuleInfo>& rule_table();

/// Fix hint attached to every diagnostic of \p rule (stable text: the
/// golden tests byte-compare it).
const std::string& rule_hint(const std::string& rule);

/// True when \p rule exists in rule_table() — config sections naming an
/// unknown rule are a parse error (typo safety).
bool known_rule(const std::string& rule);

// ---------------------------------------------------------------------------
// Small shared helpers
// ---------------------------------------------------------------------------

std::string trim(const std::string& s);

/// Glob match supporting '*' (any run of chars, including '/').  A pattern
/// with a trailing '/' matches the whole subtree.
bool glob_match(const std::string& pat, const std::string& path);
bool matches_any(const std::vector<std::string>& pats, const std::string& path);

/// Forward-slashes, strips a leading "./".
std::string normalize(std::string p);

/// FNV-1a 64 over bytes — the content hash keying the index cache.  The
/// same fold the Simulator uses for fingerprints, so cache keys are stable
/// across platforms and standard libraries (never std::hash).
std::uint64_t fnv1a(const void* data, std::size_t n);

/// Percent-encodes '%', '\t', '\n', '\r' and ' ' so variable-text fields
/// survive the whitespace-delimited cache format; decode() inverts it.
std::string cache_encode(const std::string& s);
std::string cache_decode(const std::string& s);

}  // namespace pqra_lint
