#include "callgraph.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace pqra_lint {

namespace {

/// One node per FuncDef across all files; ids are stable because files
/// arrive sorted by path.
struct Graph {
  const std::vector<const FileIndex*>& files;
  std::vector<int> base;                       // file -> first node id
  std::vector<std::vector<int>> adj;           // node -> callees
  std::map<std::string, std::vector<int>> by_name;
  std::map<std::string, std::vector<int>> by_name_method;  // class members only
  std::map<std::string, std::vector<int>> by_qual;
  std::map<std::string, std::vector<int>> pseudo_by_class;

  int node(int file, int func) const { return base[file] + func; }
  std::pair<int, int> split(int id) const {
    int file = static_cast<int>(
        std::upper_bound(base.begin(), base.end(), id) - base.begin() - 1);
    return {file, id - base[file]};
  }
  const FuncDef& def(int id) const {
    auto [fi, fj] = split(id);
    return files[fi]->funcs[fj];
  }

  explicit Graph(const std::vector<const FileIndex*>& fs) : files(fs) {
    int total = 0;
    for (const FileIndex* f : files) {
      base.push_back(total);
      total += static_cast<int>(f->funcs.size());
    }
    adj.resize(total);
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
      const FileIndex& f = *files[fi];
      for (std::size_t fj = 0; fj < f.funcs.size(); ++fj) {
        const FuncDef& fn = f.funcs[fj];
        int id = node(static_cast<int>(fi), static_cast<int>(fj));
        if (fn.is_class_scope) {
          pseudo_by_class[fn.class_name].push_back(id);
          continue;
        }
        if (!fn.name.empty()) {
          by_name[fn.name].push_back(id);
          by_qual[fn.qual].push_back(id);
          if (!fn.class_name.empty()) by_name_method[fn.name].push_back(id);
        }
        if (fn.parent >= 0) {
          adj[node(static_cast<int>(fi), fn.parent)].push_back(id);
        }
      }
    }
    // Member function -> class pseudo-node (class-scope declarations, e.g. a
    // std::function member type, count as reachable with their class).
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
      const FileIndex& f = *files[fi];
      for (std::size_t fj = 0; fj < f.funcs.size(); ++fj) {
        const FuncDef& fn = f.funcs[fj];
        if (fn.is_class_scope || fn.class_name.empty()) continue;
        auto it = pseudo_by_class.find(fn.class_name);
        if (it == pseudo_by_class.end()) continue;
        int id = node(static_cast<int>(fi), static_cast<int>(fj));
        for (int pseudo : it->second) adj[id].push_back(pseudo);
      }
    }
    // Call edges.
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
      const FileIndex& f = *files[fi];
      for (const CallSite& cs : f.calls) {
        if (cs.func < 0) continue;  // file-scope initializer — no hot path
        int from = node(static_cast<int>(fi), cs.func);
        const std::vector<int>* targets = nullptr;
        if (!cs.qual_prefix.empty()) {
          auto it = by_qual.find(cs.qual_prefix + "::" + cs.callee);
          if (it != by_qual.end()) targets = &it->second;
        }
        if (!targets) {
          // x.f() / x->f() dispatches to *some* member function named f
          // (virtual dispatch over-approximated by name); an unqualified
          // call can also be a free function.
          const auto& table = cs.member ? by_name_method : by_name;
          auto it = table.find(cs.callee);
          if (it != table.end()) targets = &it->second;
        }
        if (!targets) continue;
        for (int to : *targets) {
          if (to != from) adj[from].push_back(to);
        }
      }
    }
  }
};

bool root_matches(const FuncDef& fn, const std::string& root) {
  if (root.find("::") != std::string::npos) {
    if (fn.qual == root) return true;
    // Suffix match so "Simulator::run" also hits nested namespaces.
    return fn.qual.size() > root.size() &&
           fn.qual.compare(fn.qual.size() - root.size(), root.size(), root) ==
               0 &&
           fn.qual[fn.qual.size() - root.size() - 1] == ':';
  }
  return fn.name == root;
}

std::string chain_string(const Graph& g, const std::vector<int>& parent,
                         int id) {
  std::vector<std::string> quals;
  for (int cur = id; cur >= 0; cur = parent[cur]) {
    quals.push_back(g.def(cur).qual);
    if (parent[cur] == cur) break;
  }
  std::reverse(quals.begin(), quals.end());
  // Long chains keep the root and the last hops; the middle elides.
  if (quals.size() > 8) {
    std::vector<std::string> cut;
    cut.push_back(quals.front());
    cut.push_back("...");
    cut.insert(cut.end(), quals.end() - 6, quals.end());
    quals.swap(cut);
  }
  std::string out;
  for (std::size_t i = 0; i < quals.size(); ++i) {
    if (i) out += " -> ";
    out += quals[i];
  }
  return out;
}

std::string fact_message(const HotFact& h, const std::string& chain) {
  std::string msg;
  switch (h.rule) {
    case 'f':
      msg = "std::function in DES-reachable code";
      break;
    case 'a':
      if (h.variant == 'n') {
        msg = "`new` in DES-reachable code";
      } else if (h.variant == 'm') {
        msg = "`" + h.detail + "` in DES-reachable code";
      } else {
        msg = "`" + h.detail + "()` in DES-reachable code";
      }
      break;
    default:
      msg = "blocking primitive in DES-reachable code `" + h.detail + "`";
      break;
  }
  return msg + " (call chain: " + chain + ")";
}

const char* rule_name(char rule) {
  switch (rule) {
    case 'f':
      return "hotpath-function";
    case 'a':
      return "hotpath-alloc";
    default:
      return "hotpath-blocking";
  }
}

}  // namespace

void check_reachability(const Config& cfg,
                        const std::vector<const FileIndex*>& files,
                        std::vector<Violation>& out) {
  Graph g(files);

  // Union of the hotpath-* rules' lexical paths: functions defined there are
  // DES code by definition and seed the walk.
  std::vector<std::string> hot_paths;
  static const char* kHotRules[] = {"hotpath-function", "hotpath-alloc",
                                    "hotpath-blocking"};
  for (const char* r : kHotRules) {
    auto it = cfg.rules.find(r);
    if (it == cfg.rules.end()) continue;
    hot_paths.insert(hot_paths.end(), it->second.paths.begin(),
                     it->second.paths.end());
  }

  std::vector<int> parent(g.adj.size(), -1);
  std::vector<char> reachable(g.adj.size(), 0);
  std::deque<int> queue;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const FileIndex& f = *files[fi];
    bool hot_file = matches_any(hot_paths, f.path);
    for (std::size_t fj = 0; fj < f.funcs.size(); ++fj) {
      const FuncDef& fn = f.funcs[fj];
      bool is_root = fn.is_event_body || (hot_file && !fn.is_class_scope);
      if (!is_root) {
        for (const std::string& r : cfg.callgraph.roots) {
          if (root_matches(fn, r)) {
            is_root = true;
            break;
          }
        }
      }
      if (is_root) {
        int id = g.node(static_cast<int>(fi), static_cast<int>(fj));
        if (!reachable[id]) {
          reachable[id] = 1;
          parent[id] = id;  // self-parent marks a root
          queue.push_back(id);
        }
      }
    }
  }
  while (!queue.empty()) {
    int cur = queue.front();
    queue.pop_front();
    for (int next : g.adj[cur]) {
      if (!reachable[next]) {
        reachable[next] = 1;
        parent[next] = cur;
        queue.push_back(next);
      }
    }
  }
  // Roots report with a one-element chain; normalize self-parents for
  // chain_string's termination test.
  for (std::size_t i = 0; i < parent.size(); ++i) {
    if (parent[i] == static_cast<int>(i)) parent[i] = -1;
  }

  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const FileIndex& f = *files[fi];
    if (!cfg.callgraph.scope.empty() &&
        !matches_any(cfg.callgraph.scope, f.path)) {
      continue;
    }
    if (matches_any(cfg.callgraph.allow, f.path)) continue;
    for (const HotFact& h : f.hot_facts) {
      if (h.func < 0) continue;
      const char* rule = rule_name(h.rule);
      auto rc = cfg.rules.find(rule);
      if (rc != cfg.rules.end()) {
        // Files the lexical pass already covers, and files on the rule's
        // allowlist, stay out of the reachability pass.
        if (!rc->second.paths.empty() &&
            matches_any(rc->second.paths, f.path)) {
          continue;
        }
        if (matches_any(rc->second.allow, f.path)) continue;
      }
      int id = g.node(static_cast<int>(fi), h.func);
      if (!reachable[id]) continue;
      if (f.escaped(rule, h.line)) continue;
      out.push_back({f.path, h.line, rule,
                     fact_message(h, chain_string(g, parent, id)),
                     rule_hint(rule)});
    }
  }
}

}  // namespace pqra_lint
