#include "rules.hpp"

namespace pqra_lint {

bool rule_applies(const Config& cfg, const std::string& rule,
                  const std::string& path) {
  auto it = cfg.rules.find(rule);
  if (it == cfg.rules.end()) return true;  // unconfigured: global scope
  const RuleConfig& rc = it->second;
  if (!rc.paths.empty() && !matches_any(rc.paths, path)) return false;
  return !matches_any(rc.allow, path);
}

namespace {

void report(const FileIndex& idx, const std::string& rule, int line,
            const std::string& message, std::vector<Violation>& out) {
  if (idx.escaped(rule, line)) return;
  out.push_back({idx.path, line, rule, message, rule_hint(rule)});
}

}  // namespace

void check_file_rules(const Config& cfg, const FileIndex& idx,
                      const std::set<std::string>& closure_names,
                      std::vector<Violation>& out) {
  // Emission order per file mirrors v1 (rng idents, rng calls, clock
  // idents, clock calls, unordered sites, function, alloc, blocking,
  // metric): the final sort is unstable, so ties on (path, line, rule) keep
  // their input order only if we feed them identically.
  if (rule_applies(cfg, "determinism-rng", idx.path)) {
    for (const TokenFact& t : idx.token_facts) {
      if (t.rule == 'r' && t.variant == 'i') {
        report(idx, "determinism-rng", t.line,
               "non-reproducible RNG source `" + t.detail + "`", out);
      }
    }
    for (const TokenFact& t : idx.token_facts) {
      if (t.rule == 'r' && t.variant == 'c') {
        report(idx, "determinism-rng", t.line,
               "libc RNG `" + t.detail + "()`", out);
      }
    }
  }
  if (rule_applies(cfg, "determinism-clock", idx.path)) {
    for (const TokenFact& t : idx.token_facts) {
      if (t.rule == 'c' && t.variant == 'i') {
        report(idx, "determinism-clock", t.line,
               "wall-clock source `" + t.detail + "`", out);
      }
    }
    for (const TokenFact& t : idx.token_facts) {
      if (t.rule == 'c' && t.variant == 'c') {
        report(idx, "determinism-clock", t.line,
               "libc wall-clock call `" + t.detail + "()`", out);
      }
    }
  }
  if (rule_applies(cfg, "unordered-iter", idx.path) &&
      !closure_names.empty()) {
    for (const IterSite& site : idx.iter_sites) {
      if (site.form == 'r') {
        for (const auto& [name, line] : site.idents) {
          if (closure_names.count(name)) {
            report(idx, "unordered-iter", line,
                   "range-for over unordered container `" + name + "`", out);
            break;
          }
        }
      } else {
        const auto& [name, line] = site.idents.front();
        if (closure_names.count(name)) {
          report(idx, "unordered-iter", line,
                 "iterator walk over unordered container `" + name + "`",
                 out);
        }
      }
    }
  }
  if (rule_applies(cfg, "hotpath-function", idx.path)) {
    for (const HotFact& h : idx.hot_facts) {
      if (h.rule == 'f') {
        report(idx, "hotpath-function", h.line,
               "std::function in DES hot-path code", out);
      }
    }
  }
  if (rule_applies(cfg, "hotpath-alloc", idx.path)) {
    for (const HotFact& h : idx.hot_facts) {
      if (h.rule != 'a') continue;
      if (h.variant == 'n') {
        report(idx, "hotpath-alloc", h.line, "`new` in DES hot-path code",
               out);
      } else if (h.variant == 'm') {
        report(idx, "hotpath-alloc", h.line,
               "`" + h.detail + "` in DES hot-path code", out);
      } else {
        report(idx, "hotpath-alloc", h.line,
               "`" + h.detail + "()` in DES hot-path code", out);
      }
    }
  }
  if (rule_applies(cfg, "hotpath-blocking", idx.path)) {
    for (const HotFact& h : idx.hot_facts) {
      if (h.rule == 'b') {
        report(idx, "hotpath-blocking", h.line,
               "blocking primitive in DES code `" + h.detail + "`", out);
      }
    }
  }
  if (rule_applies(cfg, "metric-name", idx.path)) {
    for (const TokenFact& t : idx.token_facts) {
      if (t.rule == 'm') {
        report(idx, "metric-name", t.line,
               "metric-name literal \"" + t.detail +
                   "\" outside src/obs/names.hpp",
               out);
      }
    }
  }
}

}  // namespace pqra_lint
