#include "index.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pqra_lint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer (carried over from v1 byte-for-byte in behavior: the golden
// tests pin the diagnostics it feeds)
// ---------------------------------------------------------------------------

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses "pqra-lint: allow(a, b)" out of a comment body; returns the rule
/// ids (empty if the comment is not an escape).
std::set<std::string> parse_escape(const std::string& comment) {
  std::set<std::string> rules;
  const std::string key = "pqra-lint:";
  auto at = comment.find(key);
  if (at == std::string::npos) return rules;
  auto open = comment.find("allow(", at + key.size());
  if (open == std::string::npos) return rules;
  auto close = comment.find(')', open);
  if (close == std::string::npos) return rules;
  std::string list = comment.substr(open + 6, close - open - 6);
  std::string cur;
  for (char c : list) {
    if (c == ',') {
      if (!cur.empty()) rules.insert(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
  if (!cur.empty()) rules.insert(cur);
  return rules;
}

struct TokenStream {
  std::vector<Token> tokens;
  std::map<int, std::set<std::string>> escapes;
  std::vector<std::string> includes;
};

/// Tokenizes C++ source: strips comments (capturing pqra-lint escapes),
/// skips preprocessor lines (so `#include <new>` is not an allocation) and
/// collapses string literals to single tokens so banned identifiers inside
/// text never fire.  Line numbers are 1-based.
TokenStream tokenize(const std::string& src) {
  TokenStream scan;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto record_escape = [&scan](int ln, const std::string& body) {
    std::set<std::string> rules = parse_escape(body);
    if (!rules.empty()) scan.escapes[ln].insert(rules.begin(), rules.end());
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honouring continuations.
    // Quoted includes are recorded for the include graph.
    if (c == '#' && at_line_start) {
      std::size_t start = i;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      std::string directive = src.substr(start, i - start);
      auto inc = directive.find("include");
      if (inc != std::string::npos) {
        auto q1 = directive.find('"', inc);
        if (q1 != std::string::npos) {
          auto q2 = directive.find('"', q1 + 1);
          if (q2 != std::string::npos) {
            scan.includes.push_back(directive.substr(q1 + 1, q2 - q1 - 1));
          }
        }
      }
      continue;
    }
    at_line_start = false;
    // Line comment (may carry an escape annotation).
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      record_escape(line, src.substr(i + 2, end - i - 2));
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      std::string body = src.substr(i + 2, end - i - 2);
      record_escape(line, body);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = (end == n) ? n : end + 2;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, p);
      if (end == std::string::npos) end = n;
      std::string body = src.substr(p + 1, end - p - 1);
      scan.tokens.push_back({TokKind::kString, body, line});
      line += static_cast<int>(std::count(
          src.begin() + static_cast<long>(i),
          src.begin() + static_cast<long>(std::min(end + closer.size(), n)),
          '\n'));
      i = std::min(end + closer.size(), n);
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t p = i + 1;
      std::string body;
      while (p < n && src[p] != quote) {
        if (src[p] == '\\' && p + 1 < n) {
          body += src[p + 1];
          p += 2;
        } else {
          if (src[p] == '\n') ++line;
          body += src[p++];
        }
      }
      if (quote == '"') scan.tokens.push_back({TokKind::kString, body, line});
      i = (p < n) ? p + 1 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t p = i;
      while (p < n && ident_char(src[p])) ++p;
      scan.tokens.push_back({TokKind::kIdent, src.substr(i, p - i), line});
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t p = i;
      while (p < n && (ident_char(src[p]) || src[p] == '.' || src[p] == '\'')) {
        ++p;
      }
      scan.tokens.push_back({TokKind::kNumber, src.substr(i, p - i), line});
      i = p;
      continue;
    }
    // Punctuation.  "::" and "->" are kept whole (qualification / member
    // access matter to the rules); everything else is a single char so angle
    // bracket depth can be tracked without a ">>" special case.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      scan.tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      scan.tokens.push_back({TokKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    scan.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Unordered-container declaration harvest (v1 logic)
// ---------------------------------------------------------------------------

std::set<std::string> collect_unordered_names(const std::vector<Token>& t) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string> names;    // variables of unordered type
  std::set<std::string> aliases;  // using X = std::unordered_map<...>
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    bool unordered_type =
        kUnordered.count(t[i].text) > 0 || aliases.count(t[i].text) > 0;
    if (!unordered_type) continue;
    // `using X = ...unordered_map<...>;` registers an alias, not a var.
    bool in_using = false;
    for (std::size_t b = i; b-- > 0;) {
      if (t[b].text == ";" || t[b].text == "{" || t[b].text == "}") break;
      if (t[b].kind == TokKind::kIdent && t[b].text == "using") {
        in_using = true;
        if (b + 1 < t.size() && t[b + 1].kind == TokKind::kIdent) {
          aliases.insert(t[b + 1].text);
        }
        break;
      }
    }
    std::size_t j = i + 1;
    // Skip the template argument list.
    if (j < t.size() && t[j].text == "<") {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    if (in_using) continue;
    // Declarator: the last identifier before ; = { ) or , — a `(` or a
    // closing `>` means this was a return type / nested template argument.
    std::string last_ident;
    for (; j < t.size(); ++j) {
      const std::string& x = t[j].text;
      if (x == "(" || x == "<" || x == ">") {
        last_ident.clear();
        break;
      }
      if (x == ";" || x == "=" || x == "{" || x == ")" || x == ",") break;
      if (t[j].kind == TokKind::kIdent && x != "const" && x != "constexpr" &&
          x != "static" && x != "mutable") {
        last_ident = x;
      }
    }
    if (!last_ident.empty()) names.insert(last_ident);
  }
  return names;
}

// ---------------------------------------------------------------------------
// Structural + fact indexer
// ---------------------------------------------------------------------------

const std::set<std::string>& keyword_set() {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",     "switch",   "return",
      "sizeof",   "catch",    "new",       "delete",   "case",
      "do",       "else",     "template",  "typename", "using",
      "namespace","class",    "struct",    "union",    "enum",
      "decltype", "alignof",  "alignas",   "operator", "static_assert",
      "throw",    "co_await", "co_return", "co_yield", "static_cast",
      "const_cast","dynamic_cast","reinterpret_cast","noexcept","requires"};
  return kw;
}

struct Indexer {
  const std::vector<Token>& t;
  const std::vector<std::string>& schedulers;
  FileIndex& out;

  enum class ScopeKind { kFile, kNamespace, kClass, kFunc, kLambda, kBrace };
  struct Scope {
    ScopeKind kind;
    int func = -1;           // FuncDef index for kFunc/kLambda/kClass pseudo
    std::string class_name;  // for kClass
  };
  std::vector<Scope> scopes;
  // Token index of an upcoming '{' -> the scope it opens.
  std::map<std::size_t, Scope> planned;
  // (open, close) token ranges of scheduler-call argument lists.
  std::vector<std::pair<std::size_t, std::size_t>> sched_regions;
  // Current statement: token indices since the last ; { }.
  std::vector<std::size_t> stmt_toks;

  std::size_t find_matching(std::size_t open, const char* o,
                            const char* c) const {
    int depth = 0;
    for (std::size_t j = open; j < t.size(); ++j) {
      if (t[j].text == o) ++depth;
      if (t[j].text == c && --depth == 0) return j;
    }
    return t.size();
  }

  bool is_free_call(std::size_t i, const std::string& name) const {
    if (t[i].kind != TokKind::kIdent || t[i].text != name) return false;
    if (i + 1 >= t.size() || t[i + 1].text != "(") return false;
    if (i == 0) return true;
    const std::string& prev = t[i - 1].text;
    if (prev == "." || prev == "->") return false;
    if (prev == "::") {
      // std::rand / ::rand are still the banned function; Foo::rand is not.
      if (i >= 2 && t[i - 2].kind == TokKind::kIdent && t[i - 2].text != "std") {
        return false;
      }
    }
    return true;
  }

  int owner_func() const {
    for (std::size_t s = scopes.size(); s-- > 0;) {
      if (scopes[s].kind == ScopeKind::kFunc ||
          scopes[s].kind == ScopeKind::kLambda) {
        return scopes[s].func;
      }
    }
    return -1;
  }

  /// Owner for facts: innermost function, else innermost class pseudo-node
  /// (member declarations), else -1 (file scope).
  int fact_owner() const {
    for (std::size_t s = scopes.size(); s-- > 0;) {
      if (scopes[s].kind == ScopeKind::kFunc ||
          scopes[s].kind == ScopeKind::kLambda ||
          (scopes[s].kind == ScopeKind::kClass && scopes[s].func >= 0)) {
        return scopes[s].func;
      }
    }
    return -1;
  }

  std::string enclosing_class() const {
    for (std::size_t s = scopes.size(); s-- > 0;) {
      if (scopes[s].kind == ScopeKind::kClass) return scopes[s].class_name;
    }
    return "";
  }

  bool in_function_scope() const {
    for (std::size_t s = scopes.size(); s-- > 0;) {
      if (scopes[s].kind == ScopeKind::kFunc ||
          scopes[s].kind == ScopeKind::kLambda) {
        return true;
      }
      if (scopes[s].kind == ScopeKind::kClass ||
          scopes[s].kind == ScopeKind::kNamespace) {
        return false;
      }
    }
    return false;
  }

  void pre_scan_scheduler_regions() {
    std::set<std::string> sched(schedulers.begin(), schedulers.end());
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind == TokKind::kIdent && sched.count(t[i].text) &&
          t[i + 1].text == "(") {
        sched_regions.emplace_back(i + 1, find_matching(i + 1, "(", ")"));
      }
    }
  }

  bool in_scheduler_region(std::size_t i) const {
    for (const auto& [open, close] : sched_regions) {
      if (i > open && i < close) return true;
    }
    return false;
  }

  /// From the token after a parameter list's ')', finds the '{' opening a
  /// definition body; returns t.size() when this is a declaration or
  /// anything else.  Handles const/noexcept/override/&/&&, trailing return
  /// types and constructor initializer lists.
  std::size_t find_def_body(std::size_t r) const {
    int paren = 0;
    for (std::size_t j = r; j < t.size(); ++j) {
      const std::string& x = t[j].text;
      if (x == "(") ++paren;
      else if (x == ")") {
        if (paren == 0) return t.size();
        --paren;
      } else if (paren > 0) {
        continue;
      } else if (x == "{") {
        return j;
      } else if (x == ";") {
        return t.size();
      } else if (x == "=") {
        // "= default;" / "= delete;" / "= 0;" — or an initializer: either
        // way, not a body we index.
        return t.size();
      } else if (x == "," || x == "]" || x == "}") {
        return t.size();
      }
      // const, noexcept, override, final, mutable, ->, :, &, &&, idents in
      // trailing return types and ctor-init lists: keep scanning.
    }
    return t.size();
  }

  /// Parameter names of ostream-ish parameters in tokens (open, close).
  std::vector<std::string> stream_params(std::size_t open,
                                         std::size_t close) const {
    static const std::set<std::string> streamy = {"ostream", "ostringstream",
                                                  "stringstream", "FILE"};
    std::vector<std::string> out;
    bool param_streamy = false;
    std::string last_ident;
    int depth = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      const std::string& x = t[j].text;
      if (x == "(" || x == "<" || x == "[") ++depth;
      if (x == ")" || x == ">" || x == "]") --depth;
      if (x == "," && depth == 0) {
        if (param_streamy && !last_ident.empty()) out.push_back(last_ident);
        param_streamy = false;
        last_ident.clear();
        continue;
      }
      if (t[j].kind == TokKind::kIdent) {
        if (streamy.count(x)) param_streamy = true;
        else if (x != "const" && x != "std") last_ident = x;
      }
    }
    if (param_streamy && !last_ident.empty()) out.push_back(last_ident);
    return out;
  }

  void plan_function_def(std::size_t i) {
    // t[i] is an identifier followed by '('.
    std::size_t close = find_matching(i + 1, "(", ")");
    if (close >= t.size()) return;
    std::size_t body = find_def_body(close + 1);
    if (body >= t.size() || planned.count(body)) return;
    FuncDef fn;
    fn.name = t[i].text;
    if (i >= 2 && t[i - 1].text == "::" && t[i - 2].kind == TokKind::kIdent) {
      fn.class_name = t[i - 2].text;
    } else {
      fn.class_name = enclosing_class();
    }
    fn.qual = fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
    fn.line_begin = t[i].line;
    fn.stream_params = stream_params(i + 1, close);
    out.funcs.push_back(std::move(fn));
    planned[body] = Scope{ScopeKind::kFunc,
                          static_cast<int>(out.funcs.size()) - 1, ""};
  }

  void plan_lambda(std::size_t i, const std::string& path) {
    // t[i] == "[" and is not a subscript.  [[attributes]] are skipped.
    if (i + 1 < t.size() && t[i + 1].text == "[") return;
    std::size_t close = find_matching(i, "[", "]");
    if (close >= t.size() || close + 1 >= t.size()) return;
    std::size_t j = close + 1;
    std::size_t body;
    if (t[j].text == "(") {
      std::size_t pclose = find_matching(j, "(", ")");
      if (pclose >= t.size()) return;
      body = find_def_body(pclose + 1);
    } else if (t[j].text == "{") {
      body = j;
    } else {
      return;
    }
    if (body >= t.size() || planned.count(body)) return;
    FuncDef fn;
    fn.is_lambda = true;
    fn.parent = owner_func();
    fn.line_begin = t[i].line;
    fn.qual =
        "<lambda " + path + ":" + std::to_string(t[i].line) + ">";
    fn.class_name = enclosing_class();
    fn.is_event_body = in_scheduler_region(i);
    out.funcs.push_back(std::move(fn));
    planned[body] = Scope{ScopeKind::kLambda,
                          static_cast<int>(out.funcs.size()) - 1, ""};
  }

  void plan_class(std::size_t i) {
    // t[i] in {class, struct, union}; skip template parameter positions.
    if (i > 0 && (t[i - 1].text == "<" || t[i - 1].text == "," ||
                  t[i - 1].text == "enum")) {
      return;
    }
    std::size_t j = i + 1;
    // Skip attributes and macros until the name; `final` is a context
    // keyword, never the class name.
    std::string name;
    while (j < t.size() && t[j].kind == TokKind::kIdent) {
      if (t[j].text != "final") name = t[j].text;
      ++j;
      if (j < t.size() && (t[j].text == "{" || t[j].text == ":" ||
                           t[j].text == ";" || t[j].text == "<")) {
        break;
      }
    }
    if (name.empty() || j >= t.size()) return;
    if (t[j].text == ";" || t[j].text == "<") return;  // fwd decl / template
    if (t[j].text == ":") {
      // Base clause: first '{' at angle-depth 0 opens the body.
      int angle = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") ++angle;
        if (t[j].text == ">") --angle;
        if (t[j].text == ";" && angle <= 0) return;
        if (t[j].text == "{" && angle <= 0) break;
      }
      if (j >= t.size()) return;
    }
    if (t[j].text != "{" || planned.count(j)) return;
    // Pseudo-node for class-scope declarations (e.g. a std::function member
    // type): reachable when any member function is reachable.
    FuncDef pseudo;
    pseudo.is_class_scope = true;
    pseudo.class_name = name;
    pseudo.qual = "class " + name;
    pseudo.line_begin = t[i].line;
    out.funcs.push_back(std::move(pseudo));
    planned[j] = Scope{ScopeKind::kClass,
                       static_cast<int>(out.funcs.size()) - 1, name};
  }

  void plan_namespace(std::size_t i) {
    std::size_t j = i + 1;
    while (j < t.size() &&
           (t[j].kind == TokKind::kIdent || t[j].text == "::")) {
      if (t[j].text == "=") return;  // namespace alias
      ++j;
    }
    if (j < t.size() && t[j].text == "{" && !planned.count(j)) {
      planned[j] = Scope{ScopeKind::kNamespace, -1, ""};
    }
  }

  // -- facts ----------------------------------------------------------------

  void record_hot_facts(std::size_t i) {
    static const std::set<std::string> blocking = {
        "mutex",          "condition_variable", "condition_variable_any",
        "sleep_for",      "sleep_until",        "lock_guard",
        "unique_lock",    "scoped_lock",        "shared_mutex",
        "recursive_mutex"};
    const Token& tok = t[i];
    if (tok.kind != TokKind::kIdent) return;
    int owner = fact_owner();
    if (tok.text == "std" && i + 2 < t.size() && t[i + 1].text == "::" &&
        t[i + 2].text == "function") {
      out.hot_facts.push_back({owner, tok.line, 'f', 'f', "std::function"});
    } else if (tok.text == "new") {
      bool placement =
          (i > 0 && (t[i - 1].text == "::" || t[i - 1].text == "operator"));
      if (!placement) {
        out.hot_facts.push_back({owner, tok.line, 'a', 'n', "new"});
      }
    } else if (tok.text == "make_unique" || tok.text == "make_shared") {
      out.hot_facts.push_back({owner, tok.line, 'a', 'm', tok.text});
    } else if (is_free_call(i, "malloc") || is_free_call(i, "calloc") ||
               is_free_call(i, "realloc")) {
      out.hot_facts.push_back({owner, tok.line, 'a', 'c', tok.text});
    } else if (blocking.count(tok.text)) {
      out.hot_facts.push_back({owner, tok.line, 'b', 'i', tok.text});
    }
  }

  void record_token_facts(std::size_t i) {
    static const std::set<std::string> rng_idents = {
        "random_device", "mt19937",       "mt19937_64",
        "minstd_rand",   "default_random_engine",
        "knuth_b",       "random_shuffle"};
    static const std::set<std::string> clock_idents = {
        "system_clock", "gettimeofday", "localtime",
        "gmtime",       "ctime",        "timespec_get"};
    const Token& tok = t[i];
    if (tok.kind == TokKind::kString) {
      const std::string& s = tok.text;
      if (s.rfind("pqra_", 0) == 0 && s.size() > 5) {
        bool name_shaped = true;
        for (char c : s) {
          if (!(std::islower(static_cast<unsigned char>(c)) ||
                std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
            name_shaped = false;
            break;
          }
        }
        if (name_shaped) out.token_facts.push_back({tok.line, 'm', 'i', s});
      }
      return;
    }
    if (tok.kind != TokKind::kIdent) return;
    if (rng_idents.count(tok.text)) {
      out.token_facts.push_back({tok.line, 'r', 'i', tok.text});
    }
    for (const char* fn : {"rand", "srand", "rand_r", "drand48"}) {
      if (is_free_call(i, fn)) {
        out.token_facts.push_back({tok.line, 'r', 'c', tok.text});
      }
    }
    if (clock_idents.count(tok.text)) {
      out.token_facts.push_back({tok.line, 'c', 'i', tok.text});
    }
    if (is_free_call(i, "time") || is_free_call(i, "clock")) {
      out.token_facts.push_back({tok.line, 'c', 'c', tok.text});
    }
  }

  void record_iter_walk(std::size_t i) {
    if (t[i].kind != TokKind::kIdent || i + 2 >= t.size()) return;
    if ((t[i + 1].text == "." || t[i + 1].text == "->") &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin" ||
         t[i + 2].text == "rbegin")) {
      IterSite site;
      site.form = 'w';
      site.idents.emplace_back(t[i].text, t[i].line);
      out.iter_sites.push_back(std::move(site));
    }
  }

  void record_call(std::size_t i) {
    const Token& tok = t[i];
    if (tok.kind != TokKind::kIdent || i + 1 >= t.size() ||
        t[i + 1].text != "(") {
      return;
    }
    if (keyword_set().count(tok.text)) return;
    CallSite cs;
    cs.func = owner_func();
    cs.line = tok.line;
    cs.callee = tok.text;
    if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) {
      cs.member = true;
    } else if (i >= 2 && t[i - 1].text == "::" &&
               t[i - 2].kind == TokKind::kIdent) {
      if (t[i - 2].text == "std") return;  // std:: calls never resolve here
      cs.qual_prefix = t[i - 2].text;
    }
    out.calls.push_back(std::move(cs));
  }

  // -- statements (taint raw material) --------------------------------------

  void flush_stmt() {
    std::vector<std::size_t> toks;
    toks.swap(stmt_toks);
    int owner = owner_func();
    if (owner < 0 || toks.empty()) return;
    build_stmt(owner, toks, /*range_for=*/false, "", {});
  }

  /// Assembles a Stmt from the given token indices; for range-fors the
  /// caller passes the loop variable and restricts \p toks to the range
  /// expression.
  void build_stmt(int owner, const std::vector<std::size_t>& toks,
                  bool range_for, const std::string& loop_var,
                  const std::vector<std::size_t>& header_toks) {
    static const std::set<std::string> printf_family = {
        "printf", "fprintf", "sprintf", "snprintf", "puts", "fputs", "fwrite"};
    static const std::set<std::string> int_targets = {
        "uintptr_t", "intptr_t", "size_t",    "uint64_t", "uint32_t",
        "uintmax_t", "unsigned", "long",      "int"};
    Stmt st;
    st.func = owner;
    st.line = t[toks.front()].line;
    st.is_range_for = range_for;
    st.lhs = loop_var;

    const std::vector<std::size_t>& all = header_toks.empty() ? toks
                                                              : header_toks;
    // First token `return`?
    if (!range_for && t[toks.front()].kind == TokKind::kIdent &&
        t[toks.front()].text == "return") {
      st.is_return = true;
    }
    // Assignment: first top-level '=' that is not a comparison; the lhs is
    // the last identifier before it.
    if (!range_for) {
      int depth = 0;
      for (std::size_t k = 0; k < toks.size(); ++k) {
        const std::string& x = t[toks[k]].text;
        if (x == "(" || x == "[") ++depth;
        if (x == ")" || x == "]") --depth;
        if (x == "=" && depth == 0) {
          bool cmp = false;
          if (k + 1 < toks.size() && t[toks[k + 1]].text == "=") cmp = true;
          if (k > 0) {
            const std::string& p = t[toks[k - 1]].text;
            if (p == "=" || p == "!" || p == "<" || p == ">") cmp = true;
          }
          if (cmp) continue;
          for (std::size_t b = k; b-- > 0;) {
            const std::string& p = t[toks[b]].text;
            if (t[toks[b]].kind == TokKind::kIdent && p != "const" &&
                p != "auto" && p != "static" && p != "constexpr") {
              st.lhs = p;
              break;
            }
            if (p == ";" || p == "{") break;
          }
          break;
        }
      }
    }
    // Identifiers, sources, sinks, calls, sanitizers.
    bool has_shift_left = false;
    for (std::size_t k = 0; k + 1 < all.size(); ++k) {
      if (t[all[k]].text == "<" && t[all[k + 1]].text == "<") {
        has_shift_left = true;
        break;
      }
    }
    for (std::size_t k = 0; k < all.size(); ++k) {
      std::size_t i = all[k];
      const Token& tok = t[i];
      if (tok.kind == TokKind::kString) {
        if (tok.text.find("%p") != std::string::npos) {
          st.sources.push_back({'p', tok.line, "%p format"});
        }
        continue;
      }
      if (tok.kind != TokKind::kIdent) continue;
      const std::string& x = tok.text;
      if (!keyword_set().count(x) && x != "auto" && x != "const" &&
          x != "std") {
        if (std::find(st.idents.begin(), st.idents.end(), x) ==
                st.idents.end() &&
            st.idents.size() < 24) {
          st.idents.push_back(x);
        }
      }
      // Sources.
      if (x == "hash" && i >= 2 && t[i - 1].text == "::" &&
          t[i - 2].text == "std") {
        st.sources.push_back({'h', tok.line, "std::hash"});
      } else if (x == "reinterpret_cast" && i + 1 < t.size() &&
                 t[i + 1].text == "<") {
        std::size_t close = find_matching(i + 1, "<", ">");
        for (std::size_t j = i + 2; j < close && j < t.size(); ++j) {
          if (t[j].kind == TokKind::kIdent && int_targets.count(t[j].text)) {
            st.sources.push_back(
                {'p', tok.line, "reinterpret_cast to integer"});
            break;
          }
        }
      } else if (x == "system_clock" || x == "gettimeofday") {
        st.sources.push_back({'c', tok.line, x});
      } else if (is_free_call(i, "time") || is_free_call(i, "clock")) {
        st.sources.push_back({'c', tok.line, x + "()"});
      }
      // Sinks.
      bool call_like = i + 1 < t.size() && t[i + 1].text == "(";
      if (x == "encode" && call_like) add_sink(st, 'e');
      if (x.find("fingerprint") != std::string::npos || x == "fnv1a") {
        add_sink(st, 'g');
      }
      if (x == "obs" && i + 1 < t.size() && t[i + 1].text == "::") {
        add_sink(st, 'o');
      }
      if (printf_family.count(x) && is_free_call(i, x.c_str())) {
        add_sink(st, 'p');
      }
      if ((x == "sort" || x == "stable_sort") && call_like) {
        st.sanitize = true;
      }
      // Calls (for one-call-depth return-taint propagation).
      if (call_like && !keyword_set().count(x) &&
          !(i > 0 && t[i - 1].text == "::" && i >= 2 &&
            t[i - 2].text == "std") &&
          st.calls.size() < 12) {
        st.calls.push_back(x);
      }
    }
    if (has_shift_left) {
      bool streamy = false;
      for (const std::string& x : st.idents) {
        if (x == "cout" || x == "cerr") streamy = true;
      }
      if (!streamy && st.func >= 0 &&
          st.func < static_cast<int>(out.funcs.size())) {
        for (const std::string& p : out.funcs[st.func].stream_params) {
          if (std::find(st.idents.begin(), st.idents.end(), p) !=
              st.idents.end()) {
            streamy = true;
          }
        }
      }
      if (streamy) {
        add_sink(st, 's');
        // A pointer pushed into a stream: `os << static_cast<void*>(p)`.
        for (std::size_t k = 0; k + 1 < all.size(); ++k) {
          if (t[all[k]].text == "void" && t[all[k + 1]].text == "*") {
            st.sources.push_back(
                {'p', t[all[k]].line, "void* stream insertion"});
            break;
          }
        }
      }
    }
    if (st.sources.empty() && st.sinks.empty() && st.calls.empty() &&
        st.lhs.empty() && !st.is_return && !st.is_range_for) {
      return;
    }
    out.stmts.push_back(std::move(st));
  }

  static void add_sink(Stmt& st, char kind) {
    if (st.sinks.find(kind) == std::string::npos) {
      st.sinks += kind;
      std::sort(st.sinks.begin(), st.sinks.end());
    }
  }

  /// Handles `for (decl : range)`: records the IterSite and the range-for
  /// taint statement, then returns the index of the closing ')'.
  std::size_t handle_range_for(std::size_t i) {
    // t[i] == "for", t[i+1] == "(".
    std::size_t close = find_matching(i + 1, "(", ")");
    if (close >= t.size()) return i;
    int depth = 0;
    std::size_t colon = 0;
    for (std::size_t j = i + 1; j <= close; ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")") --depth;
      if (t[j].text == ":" && depth == 1 && colon == 0) colon = j;
    }
    if (colon == 0) return i;  // classic for(;;): handled as plain stmts
    IterSite site;
    site.form = 'r';
    std::vector<std::size_t> range_toks;
    for (std::size_t j = colon + 1; j < close; ++j) {
      range_toks.push_back(j);
      if (t[j].kind == TokKind::kIdent) {
        site.idents.emplace_back(t[j].text, t[j].line);
      }
    }
    if (!site.idents.empty()) out.iter_sites.push_back(site);
    std::string loop_var;
    for (std::size_t j = colon; j-- > i + 1;) {
      if (t[j].kind == TokKind::kIdent && t[j].text != "auto" &&
          t[j].text != "const") {
        loop_var = t[j].text;
        break;
      }
    }
    int owner = owner_func();
    if (owner >= 0 && !range_toks.empty()) {
      build_stmt(owner, range_toks, /*range_for=*/true, loop_var, {});
    }
    return close;
  }

  void run(const std::string& path) {
    pre_scan_scheduler_regions();
    scopes.push_back({ScopeKind::kFile, -1, ""});
    for (std::size_t i = 0; i < t.size(); ++i) {
      const Token& tok = t[i];
      if (tok.kind == TokKind::kPunct) {
        if (tok.text == "{") {
          flush_stmt();
          auto it = planned.find(i);
          if (it != planned.end()) {
            scopes.push_back(it->second);
          } else {
            scopes.push_back({ScopeKind::kBrace, -1, ""});
          }
          continue;
        }
        if (tok.text == "}") {
          flush_stmt();
          if (scopes.size() > 1) {
            Scope top = scopes.back();
            if ((top.kind == ScopeKind::kFunc ||
                 top.kind == ScopeKind::kLambda) &&
                top.func >= 0) {
              out.funcs[top.func].line_end = tok.line;
            }
            scopes.pop_back();
          }
          continue;
        }
        if (tok.text == ";") {
          stmt_toks.push_back(i);
          flush_stmt();
          continue;
        }
        if (tok.text == "[") plan_lambda(i, path);
        stmt_toks.push_back(i);
        continue;
      }
      // Identifier / string / number handling.
      if (tok.kind == TokKind::kIdent) {
        if (tok.text == "namespace") {
          plan_namespace(i);
        } else if (tok.text == "class" || tok.text == "struct" ||
                   tok.text == "union") {
          plan_class(i);
        } else if (tok.text == "for" && i + 1 < t.size() &&
                   t[i + 1].text == "(" && in_function_scope()) {
          flush_stmt();
          std::size_t close = handle_range_for(i);
          if (close != i) {
            i = close;  // range-for header consumed
            continue;
          }
        } else if (!in_function_scope() && i + 1 < t.size() &&
                   t[i + 1].text == "(" && !keyword_set().count(tok.text)) {
          plan_function_def(i);
        }
        record_call(i);
        record_iter_walk(i);
      }
      record_hot_facts(i);
      record_token_facts(i);
      stmt_toks.push_back(i);
    }
    flush_stmt();
  }
};

}  // namespace

bool FileIndex::escaped(const std::string& rule, int line) const {
  for (int ln : {line, line - 1}) {
    auto it = escapes.find(ln);
    if (it == escapes.end()) continue;
    if (it->second.count(rule) || it->second.count("all")) return true;
  }
  return false;
}

FileIndex build_index(const std::string& path, const std::string& contents,
                      const std::vector<std::string>& schedulers) {
  FileIndex idx;
  idx.path = path;
  idx.hash = fnv1a(contents.data(), contents.size());
  TokenStream ts = tokenize(contents);
  idx.includes = std::move(ts.includes);
  idx.escapes = std::move(ts.escapes);
  idx.unordered_names = collect_unordered_names(ts.tokens);
  Indexer ix{ts.tokens, schedulers, idx, {}, {}, {}, {}};
  ix.run(path);
  return idx;
}

// ---------------------------------------------------------------------------
// Cache serialization — a line-oriented text format, one record type per
// leading tag.  Variable-text fields are percent-encoded; '-' stands for an
// empty field.  The whole file is dropped on any version or parse mismatch
// (a stale or truncated cache must never change diagnostics).
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kCacheMagic = "pqra-lint-cache";
constexpr int kCacheVersion = 2;

std::string opt(const std::string& s) {
  return s.empty() ? "-" : cache_encode(s);
}
std::string unopt(const std::string& s) {
  return s == "-" ? "" : cache_decode(s);
}

std::string join_csv(const std::vector<std::string>& v) {
  if (v.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ',';
    out += v[i];
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  if (s == "-" || s.empty()) return out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

void serialize_entry(std::ostream& os, const FileIndex& f) {
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(f.hash));
  os << "F " << cache_encode(f.path) << " " << hex << "\n";
  for (const std::string& inc : f.includes) {
    os << "i " << cache_encode(inc) << "\n";
  }
  for (const std::string& n : f.unordered_names) os << "u " << n << "\n";
  for (const auto& [line, rules] : f.escapes) {
    os << "e " << line;
    for (const std::string& r : rules) os << " " << r;
    os << "\n";
  }
  for (std::size_t k = 0; k < f.funcs.size(); ++k) {
    const FuncDef& fn = f.funcs[k];
    std::string flags;
    if (fn.is_lambda) flags += 'l';
    if (fn.is_event_body) flags += 'e';
    if (fn.is_class_scope) flags += 'c';
    if (flags.empty()) flags = "-";
    os << "d " << k << " " << fn.parent << " " << fn.line_begin << " "
       << fn.line_end << " " << flags << " " << opt(fn.name) << " "
       << opt(fn.qual) << " " << opt(fn.class_name) << " "
       << join_csv(fn.stream_params) << "\n";
  }
  for (const CallSite& c : f.calls) {
    os << "c " << c.func << " " << c.line << " " << (c.member ? 1 : 0) << " "
       << c.callee << " " << opt(c.qual_prefix) << "\n";
  }
  for (const HotFact& h : f.hot_facts) {
    os << "h " << h.func << " " << h.line << " " << h.rule << h.variant << " "
       << cache_encode(h.detail) << "\n";
  }
  for (const TokenFact& tf : f.token_facts) {
    os << "t " << tf.line << " " << tf.rule << tf.variant << " "
       << cache_encode(tf.detail) << "\n";
  }
  for (const IterSite& s : f.iter_sites) {
    os << "r " << s.form << " " << s.idents.size();
    for (const auto& [name, line] : s.idents) os << " " << name << ":" << line;
    os << "\n";
  }
  for (const Stmt& s : f.stmts) {
    std::string flags;
    if (s.is_range_for) flags += 'f';
    if (s.is_return) flags += 'r';
    if (s.sanitize) flags += 'z';
    if (flags.empty()) flags = "-";
    os << "s " << s.func << " " << s.line << " " << flags << " " << opt(s.lhs)
       << " " << join_csv(s.idents) << " " << s.sources.size();
    for (const TaintSource& src : s.sources) {
      os << " " << src.kind << ":" << src.line << ":"
         << cache_encode(src.detail);
    }
    os << " " << opt(s.sinks) << " " << join_csv(s.calls) << "\n";
  }
  os << ".\n";
}

}  // namespace

const FileIndex* IndexCache::lookup(const std::string& path,
                                    std::uint64_t hash) const {
  auto it = entries.find(path);
  if (it == entries.end() || it->second.hash != hash) return nullptr;
  return &it->second;
}

void IndexCache::put(FileIndex idx) {
  entries[idx.path] = std::move(idx);
}

bool save_cache(const std::string& file, std::uint64_t config_token,
                const IndexCache& cache) {
  std::ofstream os(file, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(config_token));
  os << kCacheMagic << " " << kCacheVersion << " " << hex << "\n";
  for (const auto& [path, idx] : cache.entries) {
    (void)path;
    serialize_entry(os, idx);
  }
  return static_cast<bool>(os);
}

bool load_cache(const std::string& file, std::uint64_t config_token,
                IndexCache& cache) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  {
    std::istringstream hs(line);
    std::string magic, vers, tok;
    hs >> magic >> vers >> tok;
    char want[32];
    std::snprintf(want, sizeof want, "%016llx",
                  static_cast<unsigned long long>(config_token));
    if (magic != kCacheMagic || vers != std::to_string(kCacheVersion) ||
        tok != want) {
      return false;
    }
  }
  FileIndex cur;
  bool open = false;
  auto bail = [&cache]() {
    cache.entries.clear();
    return false;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "F") {
      if (open) return bail();
      std::string path, hex;
      ls >> path >> hex;
      cur = FileIndex{};
      cur.path = cache_decode(path);
      cur.hash = std::strtoull(hex.c_str(), nullptr, 16);
      open = true;
    } else if (tag == ".") {
      if (!open) return bail();
      cache.put(std::move(cur));
      cur = FileIndex{};
      open = false;
    } else if (!open) {
      return bail();
    } else if (tag == "i") {
      std::string inc;
      ls >> inc;
      cur.includes.push_back(cache_decode(inc));
    } else if (tag == "u") {
      std::string n;
      ls >> n;
      cur.unordered_names.insert(n);
    } else if (tag == "e") {
      int ln;
      ls >> ln;
      std::string r;
      while (ls >> r) cur.escapes[ln].insert(r);
    } else if (tag == "d") {
      std::size_t k;
      FuncDef fn;
      std::string flags, name, qual, cls, streams;
      ls >> k >> fn.parent >> fn.line_begin >> fn.line_end >> flags >> name >>
          qual >> cls >> streams;
      if (!ls || k != cur.funcs.size()) return bail();
      fn.is_lambda = flags.find('l') != std::string::npos;
      fn.is_event_body = flags.find('e') != std::string::npos;
      fn.is_class_scope = flags.find('c') != std::string::npos;
      fn.name = unopt(name);
      fn.qual = unopt(qual);
      fn.class_name = unopt(cls);
      fn.stream_params = split_csv(streams);
      cur.funcs.push_back(std::move(fn));
    } else if (tag == "c") {
      CallSite c;
      int member;
      std::string qual;
      ls >> c.func >> c.line >> member >> c.callee >> qual;
      if (!ls) return bail();
      c.member = member != 0;
      c.qual_prefix = unopt(qual);
      cur.calls.push_back(std::move(c));
    } else if (tag == "h") {
      HotFact h;
      std::string rv, detail;
      ls >> h.func >> h.line >> rv >> detail;
      if (!ls || rv.size() != 2) return bail();
      h.rule = rv[0];
      h.variant = rv[1];
      h.detail = cache_decode(detail);
      cur.hot_facts.push_back(std::move(h));
    } else if (tag == "t") {
      TokenFact tf;
      std::string rv, detail;
      ls >> tf.line >> rv >> detail;
      if (!ls || rv.size() != 2) return bail();
      tf.rule = rv[0];
      tf.variant = rv[1];
      tf.detail = cache_decode(detail);
      cur.token_facts.push_back(std::move(tf));
    } else if (tag == "r") {
      IterSite s;
      std::size_t count;
      ls >> s.form >> count;
      if (!ls) return bail();
      for (std::size_t k = 0; k < count; ++k) {
        std::string pair;
        ls >> pair;
        auto colon = pair.rfind(':');
        if (colon == std::string::npos) return bail();
        s.idents.emplace_back(pair.substr(0, colon),
                              std::atoi(pair.c_str() + colon + 1));
      }
      cur.iter_sites.push_back(std::move(s));
    } else if (tag == "s") {
      Stmt s;
      std::string flags, lhs, idents, sinks, calls;
      std::size_t nsrc;
      ls >> s.func >> s.line >> flags >> lhs >> idents >> nsrc;
      if (!ls) return bail();
      s.is_range_for = flags.find('f') != std::string::npos;
      s.is_return = flags.find('r') != std::string::npos;
      s.sanitize = flags.find('z') != std::string::npos;
      s.lhs = unopt(lhs);
      s.idents = split_csv(idents);
      for (std::size_t k = 0; k < nsrc; ++k) {
        std::string rec;
        ls >> rec;
        // kind:line:detail
        if (rec.size() < 4 || rec[1] != ':') return bail();
        auto second = rec.find(':', 2);
        if (second == std::string::npos) return bail();
        TaintSource src;
        src.kind = rec[0];
        src.line = std::atoi(rec.substr(2, second - 2).c_str());
        src.detail = cache_decode(rec.substr(second + 1));
        s.sources.push_back(std::move(src));
      }
      ls >> sinks >> calls;
      if (!ls) return bail();
      s.sinks = unopt(sinks);
      s.calls = split_csv(calls);
      cur.stmts.push_back(std::move(s));
    } else {
      return bail();
    }
  }
  if (open) return bail();
  return true;
}

}  // namespace pqra_lint
