/// \file main.cpp
/// pqra_lint driver: file walk, incremental cache, parallel per-file
/// indexing, the three passes (rules / reachability / taint), and the
/// output backends (human diagnostics, --sarif, --diff filtering).
///
/// Exit status contract (unchanged from v1, relied on by
/// bench/run_benches.sh and CI): 0 clean, 1 violations, 2 usage or
/// configuration error.  Any config parse failure is a hard exit 2 with a
/// file:line diagnostic — never a clean scan.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <tuple>

#include "callgraph.hpp"
#include "common.hpp"
#include "index.hpp"
#include "rules.hpp"
#include "taint.hpp"

namespace fs = std::filesystem;

namespace pqra_lint {
namespace {

bool has_extension(const Config& cfg, const std::string& path) {
  for (const std::string& ext : cfg.extensions) {
    if (path.size() >= ext.size() &&
        path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
      return true;
    }
  }
  return false;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--config FILE] [--cache FILE] [--sarif FILE] [--diff BASE]\n"
         "       [--jobs N] [--list-rules] PATH...\n"
         "Scans the given files/directories (relative to the working\n"
         "directory) for pqra project-invariant violations.  With no\n"
         "--config, reads .pqra-lint.toml from the working directory when\n"
         "present.\n"
         "  --cache FILE  reuse/update a content-hash-keyed index cache\n"
         "  --sarif FILE  also write diagnostics as SARIF 2.1.0\n"
         "  --diff BASE   only report findings in files changed vs the\n"
         "                given git base (the scan still covers the tree:\n"
         "                reachability and taint cross file boundaries)\n"
         "  --jobs N      index N files in parallel (default: cores)\n"
         "Exit: 0 clean, 1 violations, 2 error.\n";
  return 2;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  ok = true;
  return ss.str();
}

// -- include resolution ------------------------------------------------------

/// Quoted includes resolve the way the build does: against src/ (the
/// project include root), then the including file's own directory, then the
/// literal path.
std::string resolve_include(const std::string& from, const std::string& inc) {
  for (const fs::path& candidate :
       {fs::path("src") / inc, fs::path(from).parent_path() / inc,
        fs::path(inc)}) {
    std::error_code ec;
    if (fs::is_regular_file(candidate, ec)) {
      return normalize(candidate.generic_string());
    }
  }
  return "";
}

// -- SARIF -------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

bool write_sarif(const std::string& file,
                 const std::vector<Violation>& violations) {
  std::ofstream os(file, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  std::map<std::string, std::size_t> rule_index;
  os << "{\n"
        "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [\n"
        "    {\n"
        "      \"tool\": {\n"
        "        \"driver\": {\n"
        "          \"name\": \"pqra-lint\",\n"
        "          \"version\": \"2.0.0\",\n"
        "          \"informationUri\": "
        "\"https://example.invalid/docs/STATIC_ANALYSIS.md\",\n"
        "          \"rules\": [\n";
  const auto& rules = rule_table();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    rule_index[rules[i].id] = i;
    os << "            {\n"
       << "              \"id\": \"" << json_escape(rules[i].id) << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << json_escape(rules[i].summary) << "\" },\n"
       << "              \"help\": { \"text\": \""
       << json_escape(rule_hint(rules[i].id)) << "\" },\n"
       << "              \"defaultConfiguration\": { \"level\": \"error\" }\n"
       << "            }" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
        "        }\n"
        "      },\n"
        "      \"columnKind\": \"utf16CodeUnits\",\n"
        "      \"results\": [\n";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    std::size_t ri =
        rule_index.count(v.rule) ? rule_index[v.rule] : std::size_t{0};
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(v.rule) << "\",\n"
       << "          \"ruleIndex\": " << ri << ",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": { \"text\": \""
       << json_escape(v.message + "; hint: " + v.hint) << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << json_escape(v.path) << "\" },\n"
       << "                \"region\": { \"startLine\": "
       << (v.line > 0 ? v.line : 1) << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }" << (i + 1 < violations.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
        "    }\n"
        "  ]\n"
        "}\n";
  return static_cast<bool>(os);
}

// -- --diff ------------------------------------------------------------------

/// Changed files vs \p base via git; returns false (with \p err set) when
/// git fails — a bad base must not silently report an empty scan.
bool changed_files(const std::string& base, std::set<std::string>& out,
                   std::string& err) {
  for (char c : base) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.' || c == '/' || c == '~' || c == '^')) {
      err = "invalid --diff base '" + base + "'";
      return false;
    }
  }
  std::string cmd = "git diff --name-only " + base + " -- 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) {
    err = "cannot run git for --diff";
    return false;
  }
  char buf[4096];
  std::string acc;
  while (std::size_t got = std::fread(buf, 1, sizeof buf, pipe)) {
    acc.append(buf, got);
  }
  int rc = pclose(pipe);
  if (rc != 0) {
    err = "git diff --name-only " + base + " failed (not a repo, or unknown "
          "base?)";
    return false;
  }
  std::istringstream ss(acc);
  std::string line;
  while (std::getline(ss, line)) {
    line = trim(line);
    if (!line.empty()) out.insert(normalize(line));
  }
  return true;
}

}  // namespace
}  // namespace pqra_lint

int main(int argc, char** argv) {
  using namespace pqra_lint;

  std::string config_file, cache_file, sarif_file, diff_base;
  std::vector<std::string> roots;
  bool list_rules = false;
  int jobs = 0;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--config") {
      if (++a >= argc) return usage(argv[0]);
      config_file = argv[a];
    } else if (arg == "--cache") {
      if (++a >= argc) return usage(argv[0]);
      cache_file = argv[a];
    } else if (arg == "--sarif") {
      if (++a >= argc) return usage(argv[0]);
      sarif_file = argv[a];
    } else if (arg == "--diff") {
      if (++a >= argc) return usage(argv[0]);
      diff_base = argv[a];
    } else if (arg == "--jobs") {
      if (++a >= argc) return usage(argv[0]);
      jobs = std::atoi(argv[a]);
      if (jobs < 1) return usage(argv[0]);
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (list_rules) {
    for (const RuleInfo& r : rule_table()) {
      std::printf("%-20s %s\n", r.id.c_str(), r.summary.c_str());
    }
    return 0;
  }
  if (roots.empty()) return usage(argv[0]);

  Config cfg;
  if (config_file.empty() && fs::exists(".pqra-lint.toml")) {
    config_file = ".pqra-lint.toml";
  }
  if (!config_file.empty()) {
    std::string err;
    if (!load_config(config_file, cfg, err)) {
      std::cerr << "pqra_lint: " << err << "\n";
      return 2;
    }
  }

  // Collect files (sorted for deterministic diagnostics).
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    fs::path rp(root);
    std::error_code ec;
    if (fs::is_directory(rp, ec)) {
      for (fs::recursive_directory_iterator it(rp, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (!it->is_regular_file()) continue;
        std::string p = normalize(it->path().generic_string());
        if (has_extension(cfg, p)) files.push_back(p);
      }
    } else if (fs::is_regular_file(rp, ec)) {
      files.push_back(normalize(rp.generic_string()));
    } else {
      std::cerr << "pqra_lint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // The cache key folds the scheduler list: event-body marking happens at
  // index time, so a scheduler change must invalidate everything.
  std::string token_src = "pqra-lint-2.0";
  for (const std::string& s : cfg.callgraph.schedulers) {
    token_src += "|" + s;
  }
  std::uint64_t config_token = fnv1a(token_src.data(), token_src.size());
  IndexCache cache;
  if (!cache_file.empty()) {
    (void)load_cache(cache_file, config_token, cache);  // miss = cold scan
  }

  // Pass 1: per-file indexing, parallel across files, deterministic by
  // slotting results at the file's position.
  std::vector<FileIndex> indexes(files.size());
  std::vector<std::string> read_errors(files.size());
  {
    unsigned hw = std::thread::hardware_concurrency();
    int nthreads = jobs > 0 ? jobs : (hw > 0 ? static_cast<int>(hw) : 1);
    nthreads = std::min<int>(nthreads, static_cast<int>(files.size()));
    if (nthreads < 1) nthreads = 1;
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
      for (std::size_t i = next.fetch_add(1); i < files.size();
           i = next.fetch_add(1)) {
        bool ok = false;
        std::string contents = read_file(files[i], ok);
        if (!ok) {
          read_errors[i] = files[i];
          continue;
        }
        std::uint64_t hash = fnv1a(contents.data(), contents.size());
        if (const FileIndex* hit = cache.lookup(files[i], hash)) {
          indexes[i] = *hit;
        } else {
          indexes[i] =
              build_index(files[i], contents, cfg.callgraph.schedulers);
        }
      }
    };
    std::vector<std::thread> pool;
    for (int t = 1; t < nthreads; ++t) pool.emplace_back(worker);
    worker();
    for (std::thread& t : pool) t.join();
  }
  for (const std::string& err : read_errors) {
    if (!err.empty()) {
      std::cerr << "pqra_lint: cannot read " << err << "\n";
      return 2;
    }
  }

  std::map<std::string, const FileIndex*> by_path;
  for (const FileIndex& idx : indexes) by_path[idx.path] = &idx;

  // Headers pulled in by scanned files but outside the scan set still
  // contribute unordered-container names; index them on demand.
  std::map<std::string, FileIndex> aux;
  auto get_index = [&](const std::string& path) -> const FileIndex* {
    auto hit = by_path.find(path);
    if (hit != by_path.end()) return hit->second;
    auto ax = aux.find(path);
    if (ax != aux.end()) return &ax->second;
    bool ok = false;
    std::string contents = read_file(path, ok);
    if (!ok) return nullptr;
    std::uint64_t hash = fnv1a(contents.data(), contents.size());
    FileIndex idx;
    if (const FileIndex* cached = cache.lookup(path, hash)) {
      idx = *cached;
    } else {
      idx = build_index(path, contents, cfg.callgraph.schedulers);
    }
    return &aux.emplace(path, std::move(idx)).first->second;
  };

  // Transitive include closure -> unordered-container names per file (v1
  // resolved one level; the closure catches aliases two headers deep).
  std::map<std::string, std::set<std::string>> closure_names;
  for (const FileIndex& idx : indexes) {
    std::set<std::string>& names = closure_names[idx.path];
    std::set<std::string> visited{idx.path};
    std::vector<const FileIndex*> queue{&idx};
    while (!queue.empty()) {
      const FileIndex* cur = queue.back();
      queue.pop_back();
      names.insert(cur->unordered_names.begin(), cur->unordered_names.end());
      for (const std::string& inc : cur->includes) {
        std::string resolved = resolve_include(cur->path, inc);
        if (resolved.empty() || !visited.insert(resolved).second) continue;
        if (const FileIndex* next = get_index(resolved)) {
          queue.push_back(next);
        }
      }
    }
  }

  // Passes 2+3 over the scanned set.
  std::vector<const FileIndex*> file_ptrs;
  for (const FileIndex& idx : indexes) file_ptrs.push_back(&idx);
  std::vector<Violation> violations;
  for (const FileIndex& idx : indexes) {
    check_file_rules(cfg, idx, closure_names[idx.path], violations);
  }
  check_reachability(cfg, file_ptrs, violations);
  check_taint(cfg, file_ptrs, closure_names, violations);

  if (!diff_base.empty()) {
    std::set<std::string> changed;
    std::string err;
    if (!changed_files(diff_base, changed, err)) {
      std::cerr << "pqra_lint: " << err << "\n";
      return 2;
    }
    violations.erase(std::remove_if(violations.begin(), violations.end(),
                                    [&changed](const Violation& v) {
                                      return changed.count(v.path) == 0;
                                    }),
                     violations.end());
  }

  // stable_sort: two diagnostics can tie on (path, line, rule) — e.g. a
  // `mutex` and a `lock_guard` fact on one line — and their relative order
  // must not depend on what else is in the array, or a one-file edit could
  // reshuffle another file's output.  Ties keep deterministic emission order.
  std::stable_sort(violations.begin(), violations.end(),
                   [](const Violation& a, const Violation& b) {
                     return std::tie(a.path, a.line, a.rule) <
                            std::tie(b.path, b.line, b.rule);
                   });
  for (const Violation& v : violations) {
    std::cout << v.path << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n    hint: " << v.hint << "\n";
  }

  if (!sarif_file.empty() && !write_sarif(sarif_file, violations)) {
    std::cerr << "pqra_lint: cannot write SARIF to " << sarif_file << "\n";
    return 2;
  }
  if (!cache_file.empty()) {
    IndexCache fresh;
    for (FileIndex& idx : indexes) fresh.put(std::move(idx));
    for (auto& [path, idx] : aux) {
      (void)path;
      fresh.put(std::move(idx));
    }
    (void)save_cache(cache_file, config_token, fresh);  // best-effort
  }

  if (!violations.empty()) {
    std::cout << "pqra_lint: " << violations.size() << " violation"
              << (violations.size() == 1 ? "" : "s") << " in " << files.size()
              << " files scanned\n";
    return 1;
  }
  std::cout << "pqra_lint: clean (" << files.size() << " files scanned)\n";
  return 0;
}
