#pragma once

/// \file taint.hpp
/// Pass 3: nondeterminism-taint propagation.
///
/// Sources of run-to-run nondeterminism — unordered-container iteration
/// order, std::hash, pointer-to-integer casts, addresses formatted via %p
/// or `ostream << (void*)`, wall clocks — are propagated through
/// assignments, returns and one call-depth (a function whose return value
/// is tainted taints its callers' uses) into output sinks: Codec encode
/// calls, fingerprint accumulation, obs:: emitters and ostream/stdout
/// writes.  Each surviving source→sink chain reports as one of
/// taint-hash-order / taint-ptr-identity / taint-wall-clock with the source
/// construct, its location and the propagation step named in the message.
///
/// std::sort / std::stable_sort act as sanitizers: sorting a snapshot is
/// exactly the sanctioned fix for hash-order leaks, so sorted names drop
/// their taint.  The analysis is flow-sensitive per function (statements in
/// order, two passes for loop-carried taint) and deliberately
/// over-approximates across calls by callee *name* only one level deep —
/// deep chains belong to the replay fuzzer, not the linter.

#include <map>
#include <set>
#include <vector>

#include "common.hpp"
#include "index.hpp"

namespace pqra_lint {

/// Appends taint violations.  \p closure_names maps each file path to the
/// unordered-container names visible in its transitive include closure
/// (shared with the unordered-iter pass).
void check_taint(
    const Config& cfg, const std::vector<const FileIndex*>& files,
    const std::map<std::string, std::set<std::string>>& closure_names,
    std::vector<Violation>& out);

}  // namespace pqra_lint
