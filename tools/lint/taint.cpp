#include "taint.hpp"

#include <algorithm>

namespace pqra_lint {

namespace {

/// Where a tainted value came from, carried alongside the taint kind so the
/// diagnostic can name the full chain.
struct Origin {
  std::string detail;  // source construct ("std::hash", "time()", ...)
  std::string path;    // file of the source
  int line = 0;
  std::string via;  // propagation step ("via `key`", "returned by `f()`")
};

using TaintSet = std::map<char, Origin>;  // kind -> first origin

void merge(TaintSet& into, char kind, const Origin& origin) {
  into.emplace(kind, origin);  // first origin wins (deterministic)
}

void merge_all(TaintSet& into, const TaintSet& from, const std::string& via) {
  for (const auto& [kind, origin] : from) {
    Origin o = origin;
    o.via = via;
    into.emplace(kind, o);
  }
}

const char* rule_for(char kind) {
  switch (kind) {
    case 'h':
      return "taint-hash-order";
    case 'p':
      return "taint-ptr-identity";
    default:
      return "taint-wall-clock";
  }
}

const char* sink_desc(const std::string& sinks) {
  // Priority: the most replay-critical sink names the diagnostic.
  if (sinks.find('e') != std::string::npos) return "`Codec::encode` bytes";
  if (sinks.find('g') != std::string::npos) return "fingerprint accumulation";
  if (sinks.find('o') != std::string::npos) return "obs:: metric emission";
  if (sinks.find('s') != std::string::npos) return "ostream output";
  return "stdout output";
}

struct Interp {
  const Config& cfg;
  const std::map<std::string, std::set<std::string>>& closure_names;
  const std::map<std::string, const FileIndex*>& by_path;
  // Return-taint summaries keyed by unqualified callee name (merged across
  // all same-named functions: virtual dispatch over-approximated by name).
  std::map<std::string, TaintSet> summaries;

  /// Interprets every function of \p f once.  With \p use_calls the
  /// summaries feed call sites and sinks report into \p out; without, only
  /// return summaries accumulate (phase A).
  void run_file(const FileIndex& f, bool use_calls,
                std::vector<Violation>* out) {
    const std::set<std::string>* unordered = nullptr;
    auto cn = closure_names.find(f.path);
    if (cn != closure_names.end()) unordered = &cn->second;

    // Statements are stored in token order; group per function.
    std::map<int, std::vector<const Stmt*>> per_func;
    for (const Stmt& s : f.stmts) per_func[s.func].push_back(&s);

    for (const auto& [func, stmts] : per_func) {
      (void)func;
      std::map<std::string, TaintSet> vars;
      TaintSet ret;
      // Two passes so loop-carried taint (defined below its use) settles.
      for (int pass = 0; pass < 2; ++pass) {
        bool report_pass = use_calls && pass == 1;
        for (const Stmt* sp : stmts) {
          const Stmt& st = *sp;
          if (st.sanitize) {
            // std::sort(v.begin(), v.end()): a sorted snapshot is the
            // sanctioned fix — clear every name the statement touches.
            for (const std::string& id : st.idents) vars.erase(id);
            continue;
          }
          TaintSet incoming;
          for (const TaintSource& src : st.sources) {
            merge(incoming, src.kind, {src.detail, f.path, src.line, ""});
          }
          if (st.is_range_for && unordered) {
            for (const std::string& id : st.idents) {
              if (unordered->count(id)) {
                merge(incoming, 'h',
                      {"unordered iteration over `" + id + "`", f.path,
                       st.line, ""});
                break;
              }
            }
          }
          for (const std::string& id : st.idents) {
            auto it = vars.find(id);
            if (it != vars.end()) {
              merge_all(incoming, it->second, "via `" + id + "`");
            }
          }
          if (use_calls) {
            for (const std::string& callee : st.calls) {
              auto it = summaries.find(callee);
              if (it != summaries.end()) {
                merge_all(incoming, it->second,
                          "returned by `" + callee + "()`");
              }
            }
          }
          if (report_pass && !st.sinks.empty() && !incoming.empty()) {
            report(f, st, incoming, *out);
          }
          if (st.is_return) {
            for (const auto& [kind, origin] : incoming) {
              ret.emplace(kind, origin);
            }
          }
          if (!st.lhs.empty()) {
            if (incoming.empty()) {
              vars.erase(st.lhs);
            } else {
              vars[st.lhs] = incoming;
            }
          }
        }
      }
      if (!use_calls && !ret.empty() && func >= 0 &&
          func < static_cast<int>(f.funcs.size())) {
        const std::string& name = f.funcs[func].name;
        if (!name.empty()) {
          for (const auto& [kind, origin] : ret) {
            summaries[name].emplace(kind, origin);
          }
        }
      }
    }
  }

  void report(const FileIndex& f, const Stmt& st, const TaintSet& incoming,
              std::vector<Violation>& out) const {
    for (const auto& [kind, origin] : incoming) {
      const char* rule = rule_for(kind);
      auto rc = cfg.rules.find(rule);
      if (rc != cfg.rules.end()) {
        if (!rc->second.paths.empty() &&
            !matches_any(rc->second.paths, f.path)) {
          continue;
        }
        if (matches_any(rc->second.allow, f.path)) continue;
      }
      if (f.escaped(rule, st.line)) continue;
      // An escape at the source site covers its downstream sinks too.
      auto src_file = by_path.find(origin.path);
      if (src_file != by_path.end() &&
          src_file->second->escaped(rule, origin.line)) {
        continue;
      }
      std::string msg = "nondeterministic value reaches " +
                        std::string(sink_desc(st.sinks)) + " (source: " +
                        origin.detail + " at " + origin.path + ":" +
                        std::to_string(origin.line);
      if (!origin.via.empty()) msg += ", " + origin.via;
      msg += ")";
      out.push_back({f.path, st.line, rule, msg, rule_hint(rule)});
    }
  }
};

}  // namespace

void check_taint(
    const Config& cfg, const std::vector<const FileIndex*>& files,
    const std::map<std::string, std::set<std::string>>& closure_names,
    std::vector<Violation>& out) {
  std::map<std::string, const FileIndex*> by_path;
  for (const FileIndex* f : files) by_path[f->path] = f;
  Interp interp{cfg, closure_names, by_path, {}};
  // Phase A: intra-procedural return-taint summaries.
  for (const FileIndex* f : files) interp.run_file(*f, false, nullptr);
  // Phase B: propagate one call-depth and report sinks.
  for (const FileIndex* f : files) interp.run_file(*f, true, &out);
}

}  // namespace pqra_lint
