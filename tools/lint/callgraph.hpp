#pragma once

/// \file callgraph.hpp
/// Pass 2: project-wide call graph + DES reachability.
///
/// v1's hotpath-* rules were path-scoped: a heap-allocating helper in
/// src/core/ called from an event body was invisible.  This pass links
/// every indexed function into one graph (qualified call sites resolve by
/// "Class::name"; member calls and unqualified calls fall back to matching
/// every project function of that name, which over-approximates virtual
/// dispatch; lambdas hang off their enclosing function; a class pseudo-node
/// is reachable when any of its member functions is) and walks it from the
/// DES fire loop:
///
///   roots = [callgraph].roots (qualified-name suffixes)
///         ∪ every function defined in a hotpath-* `paths` file
///         ∪ every lambda passed to a Simulator scheduler call
///
/// Every hot-path fact inside a reachable function of an in-scope file is
/// then reported with the full root→function call chain in the diagnostic.
/// Files already covered lexically by a rule's `paths` are skipped here, so
/// v2 findings are a strict superset of v1's and nothing reports twice.

#include <vector>

#include "common.hpp"
#include "index.hpp"

namespace pqra_lint {

/// Appends reachability-based hotpath-* violations for \p files (sorted by
/// path; the order fixes BFS determinism and therefore chain choice).
void check_reachability(const Config& cfg,
                        const std::vector<const FileIndex*>& files,
                        std::vector<Violation>& out);

}  // namespace pqra_lint
