#include "common.hpp"

#include <cctype>
#include <fstream>

namespace pqra_lint {

// ---------------------------------------------------------------------------
// Rule catalogue
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kRules = {
      {"determinism-rng",
       "raw RNG sources (std::random_device, mt19937, rand) outside "
       "util::Rng"},
      {"determinism-clock",
       "wall-clock reads (system_clock, time(), gettimeofday) in simulated "
       "code"},
      {"unordered-iter",
       "iteration over std::unordered_{map,set} (hash order leaks into "
       "output)"},
      {"hotpath-function",
       "std::function in DES hot-path code (heap-allocates)"},
      {"hotpath-alloc",
       "heap allocation (new/make_unique/malloc) in DES hot-path code"},
      {"hotpath-blocking",
       "blocking primitives (mutex/condition_variable/sleep) in DES code"},
      {"metric-name",
       "metric-name string literal outside src/obs/names.hpp (string "
       "drift)"},
      {"taint-hash-order",
       "hash-ordered value (std::hash, unordered iteration) reaches an "
       "output sink"},
      {"taint-ptr-identity",
       "pointer identity (ptr->int cast, %p, void* insertion) reaches an "
       "output sink"},
      {"taint-wall-clock",
       "wall-clock value reaches an output sink (replay divergence)"},
  };
  return kRules;
}

bool known_rule(const std::string& rule) {
  for (const RuleInfo& r : rule_table()) {
    if (r.id == rule) return true;
  }
  return false;
}

const std::string& rule_hint(const std::string& rule) {
  static const std::map<std::string, std::string> kHints = {
      {"determinism-rng",
       "draw randomness through util::Rng (src/util/rng.hpp); derive "
       "per-stream generators with Rng::fork(stream_id)"},
      {"determinism-clock",
       "simulated code must take time from sim::Simulator::now(); threaded "
       "runtime timeouts use steady_clock (allowlisted files only)"},
      {"unordered-iter",
       "iterate a sorted snapshot (copy keys/entries into a std::vector and "
       "std::sort) or use std::map/std::set when order reaches any output"},
      {"hotpath-function",
       "use sim::EventFn (sim/event_fn.hpp): small-buffer storage, "
       "no heap allocation in the schedule->fire loop"},
      {"hotpath-alloc",
       "event-path storage must come from sim::EventArena (recycled slab "
       "blocks); construction-time factories need an inline escape"},
      {"hotpath-blocking",
       "the DES is single-threaded by contract (docs/PERFORMANCE.md); "
       "threaded-runtime files belong on the rule's allowlist"},
      {"metric-name",
       "add a constant to src/obs/names.hpp and reference it "
       "(obs::names::k...)"},
      {"taint-hash-order",
       "hash order must never reach bytes, fingerprints, metrics or stdout: "
       "sort a snapshot before emitting, or key on deterministic ids "
       "(docs/STATIC_ANALYSIS.md)"},
      {"taint-ptr-identity",
       "pointer values vary per run (ASLR/allocator): emit stable ids (node "
       "index, op id) instead of addresses"},
      {"taint-wall-clock",
       "wall-clock values in output break byte-identical replay: take time "
       "from sim::Simulator::now()"},
  };
  static const std::string kEmpty;
  auto it = kHints.find(rule);
  return it == kHints.end() ? kEmpty : it->second;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

bool glob_match(const std::string& pat, const std::string& path) {
  if (!pat.empty() && pat.back() == '/') {
    return path.rfind(pat, 0) == 0;
  }
  std::size_t p = 0, s = 0, star = std::string::npos, mark = 0;
  while (s < path.size()) {
    if (p < pat.size() && (pat[p] == path[s])) {
      ++p, ++s;
    } else if (p < pat.size() && pat[p] == '*') {
      star = p++;
      mark = s;
    } else if (star != std::string::npos) {
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pat.size() && pat[p] == '*') ++p;
  return p == pat.size();
}

bool matches_any(const std::vector<std::string>& pats,
                 const std::string& path) {
  for (const std::string& pat : pats) {
    if (glob_match(pat, path)) return true;
  }
  return false;
}

std::string normalize(std::string p) {
  for (char& c : p) {
    if (c == '\\') c = '/';
  }
  if (p.rfind("./", 0) == 0) p = p.substr(2);
  return p;
}

std::uint64_t fnv1a(const void* data, std::size_t n) {
  const unsigned char* b = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string cache_encode(const std::string& s) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      out += '%';
      out += hex[c >> 4];
      out += hex[c & 0xf];
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

static int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::string cache_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() && hex_val(s[i + 1]) >= 0 &&
        hex_val(s[i + 2]) >= 0) {
      out += static_cast<char>(hex_val(s[i + 1]) * 16 + hex_val(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Configuration loader — a deliberately small TOML subset: [sections],
// key = "string" | [ "array", "of", "strings" ], # comments.  Unlike v1,
// every malformed construct is a hard error with a file:line diagnostic
// (a silently-ignored line once let an unreadable config produce a clean
// exit through a harness wrapper; see tests/lint/lint_config_error.cmake).
// ---------------------------------------------------------------------------

namespace {

/// Splits a TOML string array body ("a", "b") into its elements.  Returns
/// false when the body contains anything but quoted strings, commas and
/// whitespace (a bare unquoted value used to vanish silently).
bool parse_string_array(const std::string& body, std::vector<std::string>& out,
                        std::string& why) {
  std::size_t i = 0;
  bool want_comma = false;
  while (i < body.size()) {
    char c = body[i];
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (c == ',') want_comma = false;
      ++i;
      continue;
    }
    if (c == '"') {
      if (want_comma) {
        why = "missing ',' between array elements";
        return false;
      }
      std::size_t end = body.find('"', i + 1);
      if (end == std::string::npos) {
        why = "unterminated string in array";
        return false;
      }
      out.push_back(body.substr(i + 1, end - i - 1));
      want_comma = true;
      i = end + 1;
      continue;
    }
    why = "array elements must be double-quoted strings";
    return false;
  }
  return true;
}

struct Committer {
  Config& cfg;
  std::string section;

  bool commit(const std::string& key, const std::string& value,
              std::string& why) {
    std::string body = value;
    if (!body.empty() && body.front() == '[') {
      std::size_t close = body.rfind(']');
      if (close == std::string::npos) {
        why = "unterminated array";
        return false;
      }
      body = body.substr(1, close - 1);
    } else if (!body.empty() && body.front() == '"') {
      // A single string commits like a one-element array.
    } else {
      why = "value must be a \"string\" or [\"array\", \"of\", \"strings\"]";
      return false;
    }
    std::vector<std::string> items;
    if (!parse_string_array(body, items, why)) return false;

    if (section == "lint") {
      if (key == "extensions") {
        cfg.extensions = items;
        return true;
      }
      why = "unknown key '" + key + "' in [lint]";
      return false;
    }
    if (section == "callgraph") {
      if (key == "roots") cfg.callgraph.roots = items;
      else if (key == "schedulers") cfg.callgraph.schedulers = items;
      else if (key == "scope") cfg.callgraph.scope = items;
      else if (key == "allow") cfg.callgraph.allow = items;
      else {
        why = "unknown key '" + key + "' in [callgraph]";
        return false;
      }
      return true;
    }
    if (section.rfind("rule.", 0) == 0) {
      RuleConfig& rc = cfg.rules[section.substr(5)];
      if (key == "allow") rc.allow = items;
      else if (key == "paths") rc.paths = items;
      else {
        why = "unknown key '" + key + "' in [" + section + "]";
        return false;
      }
      return true;
    }
    why = "unknown section [" + section + "]";
    return false;
  }
};

}  // namespace

bool load_config(const std::string& file, Config& cfg, std::string& err) {
  std::ifstream in(file);
  if (!in) {
    err = file + ": cannot open config file";
    return false;
  }
  Committer committer{cfg, ""};
  std::string line, pending_key, pending_array;
  int lineno = 0, pending_line = 0;
  bool in_array = false;
  auto fail = [&](int ln, const std::string& why) {
    err = file + ":" + std::to_string(ln) + ": " + why;
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments (a '#' outside quotes).
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"') quoted = !quoted;
      if (line[i] == '#' && !quoted) {
        line = line.substr(0, i);
        break;
      }
    }
    if (quoted) return fail(lineno, "unterminated string");
    line = trim(line);
    if (in_array) {
      pending_array += " " + line;
      if (line.find(']') != std::string::npos) {
        std::string why;
        if (!committer.commit(pending_key, pending_array, why)) {
          return fail(pending_line, why);
        }
        in_array = false;
      }
      continue;
    }
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        return fail(lineno, "section header missing closing ']'");
      }
      committer.section = trim(line.substr(1, line.size() - 2));
      if (committer.section.empty()) return fail(lineno, "empty section name");
      if (committer.section.rfind("rule.", 0) == 0 &&
          !known_rule(committer.section.substr(5))) {
        return fail(lineno, "unknown rule '" + committer.section.substr(5) +
                                "' (see --list-rules)");
      }
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return fail(lineno, "expected 'key = value' or '[section]'");
    }
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (key.empty()) return fail(lineno, "missing key before '='");
    if (committer.section.empty()) {
      return fail(lineno, "key outside any [section]");
    }
    if (!value.empty() && value.front() == '[' &&
        value.find(']') == std::string::npos) {
      in_array = true;
      pending_key = key;
      pending_array = value;
      pending_line = lineno;
      continue;
    }
    std::string why;
    if (!committer.commit(key, value, why)) return fail(lineno, why);
  }
  if (in_array) {
    return fail(pending_line, "unterminated array (no closing ']')");
  }
  return true;
}

}  // namespace pqra_lint
