#pragma once

/// \file rules.hpp
/// The per-file token rules carried over from v1 — determinism-rng/clock,
/// metric-name, unordered-iter and the lexical (path-scoped) hotpath-*
/// checks — replayed from the pass-1 facts so cached files never
/// re-tokenize.  Diagnostic text and per-file ordering match v1 exactly:
/// the golden tests byte-compare the output.
///
/// unordered-iter is the one upgrade: names now come from the *transitive*
/// include closure (v1 looked one include deep), so v2 findings are a
/// strict superset.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common.hpp"
#include "index.hpp"

namespace pqra_lint {

/// True when \p rule applies to \p path under cfg (v1 semantics: an
/// unconfigured rule is global; non-empty `paths` restricts; `allow`
/// exempts).
bool rule_applies(const Config& cfg, const std::string& rule,
                  const std::string& path);

/// Appends the file-local violations for \p idx.  \p closure_names are the
/// unordered-container names from the file's transitive include closure
/// (its own declarations included).
void check_file_rules(const Config& cfg, const FileIndex& idx,
                      const std::set<std::string>& closure_names,
                      std::vector<Violation>& out);

}  // namespace pqra_lint
