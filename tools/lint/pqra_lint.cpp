/// \file pqra_lint.cpp
/// Project-invariant static analysis for the pqra tree.
///
/// The paper's tail bounds are only falsifiable here because every experiment
/// replays byte-identically from a seed (docs/PERFORMANCE.md).  That property
/// is enforced at runtime by the cli_jobs_determinism / cli_fault_replay
/// gates, but nothing stops a stray std::random_device, wall-clock read or
/// unordered_map iteration from being merged in the first place.  pqra_lint
/// closes that gap at the source level: a lightweight tokenizer (no libclang)
/// plus a per-file rule engine that machine-checks the invariants previous
/// PRs established by convention.  Rules, scopes and allowlists live in
/// .pqra-lint.toml; one-off justified exceptions use inline escapes:
///
///   // pqra-lint: allow(<rule-id>[, <rule-id>...])   -- this line + the next
///
/// Exit status: 0 clean, 1 violations found, 2 usage/configuration error.
/// See docs/STATIC_ANALYSIS.md for the rule catalogue and rationale.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kPunct, kString, kNumber };

struct Token {
  TokKind kind;
  std::string text;  // for kString: the literal's *contents*, unescaped-ish
  int line;
};

struct FileScan {
  std::string path;  // as given on the command line / directory walk
  std::vector<Token> tokens;
  // line -> rule ids allowed by an inline escape on that line (an escape
  // also covers the following line, handled at query time).
  std::map<int, std::set<std::string>> escapes;
  // #include "..." targets, so a .cpp sees the unordered members its own
  // header declares.
  std::vector<std::string> includes;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses "pqra-lint: allow(a, b)" out of a comment body; returns the rule
/// ids (empty if the comment is not an escape).
std::set<std::string> parse_escape(const std::string& comment) {
  std::set<std::string> rules;
  const std::string key = "pqra-lint:";
  auto at = comment.find(key);
  if (at == std::string::npos) return rules;
  auto open = comment.find("allow(", at + key.size());
  if (open == std::string::npos) return rules;
  auto close = comment.find(')', open);
  if (close == std::string::npos) return rules;
  std::string list = comment.substr(open + 6, close - open - 6);
  std::string cur;
  for (char c : list) {
    if (c == ',') {
      if (!cur.empty()) rules.insert(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
  if (!cur.empty()) rules.insert(cur);
  return rules;
}

/// Tokenizes C++ source: strips comments (capturing pqra-lint escapes),
/// skips preprocessor lines (so `#include <new>` is not an allocation) and
/// collapses string literals to single tokens so banned identifiers inside
/// text never fire.  Line numbers are 1-based.
FileScan tokenize(const std::string& path, const std::string& src) {
  FileScan scan;
  scan.path = path;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto record_escape = [&scan](int ln, const std::string& body) {
    std::set<std::string> rules = parse_escape(body);
    if (!rules.empty()) scan.escapes[ln].insert(rules.begin(), rules.end());
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honouring continuations.
    // Quoted includes are recorded for cross-file member-type lookup.
    if (c == '#' && at_line_start) {
      std::size_t start = i;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      std::string directive = src.substr(start, i - start);
      auto inc = directive.find("include");
      if (inc != std::string::npos) {
        auto q1 = directive.find('"', inc);
        if (q1 != std::string::npos) {
          auto q2 = directive.find('"', q1 + 1);
          if (q2 != std::string::npos) {
            scan.includes.push_back(directive.substr(q1 + 1, q2 - q1 - 1));
          }
        }
      }
      continue;
    }
    at_line_start = false;
    // Line comment (may carry an escape annotation).
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      record_escape(line, src.substr(i + 2, end - i - 2));
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      std::string body = src.substr(i + 2, end - i - 2);
      record_escape(line, body);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = (end == n) ? n : end + 2;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, p);
      if (end == std::string::npos) end = n;
      std::string body = src.substr(p + 1, end - p - 1);
      scan.tokens.push_back({TokKind::kString, body, line});
      line += static_cast<int>(std::count(src.begin() + static_cast<long>(i),
                                          src.begin() + static_cast<long>(
                                              std::min(end + closer.size(), n)),
                                          '\n'));
      i = std::min(end + closer.size(), n);
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t p = i + 1;
      std::string body;
      while (p < n && src[p] != quote) {
        if (src[p] == '\\' && p + 1 < n) {
          body += src[p + 1];
          p += 2;
        } else {
          if (src[p] == '\n') ++line;
          body += src[p++];
        }
      }
      if (quote == '"') scan.tokens.push_back({TokKind::kString, body, line});
      i = (p < n) ? p + 1 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t p = i;
      while (p < n && ident_char(src[p])) ++p;
      scan.tokens.push_back({TokKind::kIdent, src.substr(i, p - i), line});
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t p = i;
      while (p < n && (ident_char(src[p]) || src[p] == '.' || src[p] == '\'')) {
        ++p;
      }
      scan.tokens.push_back({TokKind::kNumber, src.substr(i, p - i), line});
      i = p;
      continue;
    }
    // Punctuation.  "::" and "->" are kept whole (qualification / member
    // access matter to the rules); everything else is a single char so angle
    // bracket depth can be tracked without a ">>" special case.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      scan.tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      scan.tokens.push_back({TokKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    scan.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Configuration (.pqra-lint.toml — a deliberately small TOML subset:
// [sections], key = "string" | [ "array", "of", "strings" ], # comments)
// ---------------------------------------------------------------------------

struct RuleConfig {
  std::vector<std::string> allow;  // path globs exempt from the rule
  std::vector<std::string> paths;  // if non-empty, rule only applies here
};

struct Config {
  std::vector<std::string> extensions = {".cpp", ".hpp", ".cc", ".h"};
  std::map<std::string, RuleConfig> rules;
};

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

/// Splits a TOML string array body ("a", "b") into its elements.
std::vector<std::string> parse_string_array(const std::string& body) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < body.size()) {
    if (body[i] == '"') {
      std::size_t end = body.find('"', i + 1);
      if (end == std::string::npos) break;
      out.push_back(body.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      ++i;
    }
  }
  return out;
}

bool load_config(const std::string& file, Config& cfg, std::string& err) {
  std::ifstream in(file);
  if (!in) {
    err = "cannot open config file: " + file;
    return false;
  }
  std::string line, section, pending_key, pending_array;
  bool in_array = false;
  auto commit = [&](const std::string& key, const std::string& value) {
    std::vector<std::string> items = parse_string_array(value);
    if (section == "lint") {
      if (key == "extensions") cfg.extensions = items;
    } else if (section.rfind("rule.", 0) == 0) {
      RuleConfig& rc = cfg.rules[section.substr(5)];
      if (key == "allow") rc.allow = items;
      if (key == "paths") rc.paths = items;
    }
  };
  while (std::getline(in, line)) {
    // Strip comments (a '#' outside quotes).
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"') quoted = !quoted;
      if (line[i] == '#' && !quoted) {
        line = line.substr(0, i);
        break;
      }
    }
    line = trim(line);
    if (in_array) {
      pending_array += line;
      if (line.find(']') != std::string::npos) {
        commit(pending_key, pending_array);
        in_array = false;
      }
      continue;
    }
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') {
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (!value.empty() && value.front() == '[' &&
        value.find(']') == std::string::npos) {
      in_array = true;
      pending_key = key;
      pending_array = value;
      continue;
    }
    commit(key, value);
  }
  return true;
}

/// Glob match supporting '*' (any run of chars, including '/').  A pattern
/// with a trailing '/' matches the whole subtree.
bool glob_match(const std::string& pat, const std::string& path) {
  if (!pat.empty() && pat.back() == '/') {
    return path.rfind(pat, 0) == 0;
  }
  // Iterative wildcard match.
  std::size_t p = 0, s = 0, star = std::string::npos, mark = 0;
  while (s < path.size()) {
    if (p < pat.size() && (pat[p] == path[s])) {
      ++p, ++s;
    } else if (p < pat.size() && pat[p] == '*') {
      star = p++;
      mark = s;
    } else if (star != std::string::npos) {
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pat.size() && pat[p] == '*') ++p;
  return p == pat.size();
}

bool matches_any(const std::vector<std::string>& pats,
                 const std::string& path) {
  for (const std::string& pat : pats) {
    if (glob_match(pat, path)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

struct Violation {
  std::string path;
  int line;
  std::string rule;
  std::string message;
  std::string hint;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// Names declared with an unordered container type in this token stream
/// (members, locals, parameters).  Tracks `using X = std::unordered_map<..>`
/// aliases declared earlier in the same file.
std::set<std::string> collect_unordered_names(const std::vector<Token>& t) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string> names;    // variables of unordered type
  std::set<std::string> aliases;  // using X = std::unordered_map<...>
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    bool unordered_type =
        kUnordered.count(t[i].text) > 0 || aliases.count(t[i].text) > 0;
    if (!unordered_type) continue;
    // `using X = ...unordered_map<...>;` registers an alias, not a var.
    bool in_using = false;
    for (std::size_t b = i; b-- > 0;) {
      if (t[b].text == ";" || t[b].text == "{" || t[b].text == "}") break;
      if (t[b].kind == TokKind::kIdent && t[b].text == "using") {
        in_using = true;
        // The alias name is right after `using`.
        if (b + 1 < t.size() && t[b + 1].kind == TokKind::kIdent) {
          aliases.insert(t[b + 1].text);
        }
        break;
      }
    }
    std::size_t j = i + 1;
    // Skip the template argument list.
    if (j < t.size() && t[j].text == "<") {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    if (in_using) continue;
    // Declarator: the last identifier before ; = { ) or , — a `(` or a
    // closing `>` means this was a return type / nested template argument.
    std::string last_ident;
    for (; j < t.size(); ++j) {
      const std::string& x = t[j].text;
      if (x == "(" || x == "<" || x == ">") {
        last_ident.clear();
        break;
      }
      if (x == ";" || x == "=" || x == "{" || x == ")" || x == ",") break;
      if (t[j].kind == TokKind::kIdent && x != "const" && x != "constexpr" &&
          x != "static" && x != "mutable") {
        last_ident = x;
      }
    }
    if (!last_ident.empty()) names.insert(last_ident);
  }
  return names;
}

const std::vector<RuleInfo> kRules = {
    {"determinism-rng",
     "raw RNG sources (std::random_device, mt19937, rand) outside util::Rng"},
    {"determinism-clock",
     "wall-clock reads (system_clock, time(), gettimeofday) in simulated code"},
    {"unordered-iter",
     "iteration over std::unordered_{map,set} (hash order leaks into output)"},
    {"hotpath-function", "std::function in DES hot-path code (heap-allocates)"},
    {"hotpath-alloc",
     "heap allocation (new/make_unique/malloc) in DES hot-path code"},
    {"hotpath-blocking",
     "blocking primitives (mutex/condition_variable/sleep) in DES code"},
    {"metric-name",
     "metric-name string literal outside src/obs/names.hpp (string drift)"},
};

class Linter {
 public:
  explicit Linter(Config cfg) : cfg_(std::move(cfg)) {}

  /// \p extra_names: unordered-container variable names contributed by the
  /// file's directly-included project headers.
  void lint_file(const FileScan& scan, std::set<std::string> extra_names) {
    scan_ = &scan;
    extra_names_ = std::move(extra_names);
    if (applies("determinism-rng")) check_determinism_rng();
    if (applies("determinism-clock")) check_determinism_clock();
    if (applies("unordered-iter")) check_unordered_iter();
    if (applies("hotpath-function")) check_hotpath_function();
    if (applies("hotpath-alloc")) check_hotpath_alloc();
    if (applies("hotpath-blocking")) check_hotpath_blocking();
    if (applies("metric-name")) check_metric_names();
  }

  const std::vector<Violation>& violations() const { return violations_; }

 private:
  bool applies(const std::string& rule) const {
    auto it = cfg_.rules.find(rule);
    if (it == cfg_.rules.end()) return true;  // unconfigured: global scope
    const RuleConfig& rc = it->second;
    if (!rc.paths.empty() && !matches_any(rc.paths, scan_->path)) return false;
    return !matches_any(rc.allow, scan_->path);
  }

  bool escaped(const std::string& rule, int line) const {
    for (int ln : {line, line - 1}) {
      auto it = scan_->escapes.find(ln);
      if (it == scan_->escapes.end()) continue;
      if (it->second.count(rule) || it->second.count("all")) return true;
    }
    return false;
  }

  void report(const std::string& rule, int line, const std::string& message,
              const std::string& hint) {
    if (escaped(rule, line)) return;
    violations_.push_back({scan_->path, line, rule, message, hint});
  }

  const std::vector<Token>& toks() const { return scan_->tokens; }

  /// True when token i is a free-function *call* of the given name (not a
  /// member access: `x.time(...)` / `x->clock()` stay legal).
  bool is_free_call(std::size_t i, const std::string& name) const {
    const auto& t = toks();
    if (t[i].kind != TokKind::kIdent || t[i].text != name) return false;
    if (i + 1 >= t.size() || t[i + 1].text != "(") return false;
    if (i == 0) return true;
    const std::string& prev = t[i - 1].text;
    if (prev == "." || prev == "->") return false;
    if (prev == "::") {
      // std::rand / ::rand are still the banned function; Foo::rand is not.
      if (i >= 2 && toks()[i - 2].kind == TokKind::kIdent &&
          toks()[i - 2].text != "std") {
        return false;
      }
    }
    return true;
  }

  void ban_idents(const std::string& rule, const std::set<std::string>& banned,
                  const std::string& what, const std::string& hint) {
    for (const Token& t : toks()) {
      if (t.kind == TokKind::kIdent && banned.count(t.text)) {
        report(rule, t.line, what + " `" + t.text + "`", hint);
      }
    }
  }

  // -- determinism ----------------------------------------------------------

  void check_determinism_rng() {
    const std::string hint =
        "draw randomness through util::Rng (src/util/rng.hpp); derive "
        "per-stream generators with Rng::fork(stream_id)";
    ban_idents("determinism-rng",
               {"random_device", "mt19937", "mt19937_64", "minstd_rand",
                "default_random_engine", "knuth_b", "random_shuffle"},
               "non-reproducible RNG source", hint);
    for (std::size_t i = 0; i < toks().size(); ++i) {
      for (const char* fn : {"rand", "srand", "rand_r", "drand48"}) {
        if (is_free_call(i, fn)) {
          report("determinism-rng", toks()[i].line,
                 std::string("libc RNG `") + fn + "()`", hint);
        }
      }
    }
  }

  void check_determinism_clock() {
    const std::string hint =
        "simulated code must take time from sim::Simulator::now(); threaded "
        "runtime timeouts use steady_clock (allowlisted files only)";
    ban_idents("determinism-clock",
               {"system_clock", "gettimeofday", "localtime", "gmtime",
                "ctime", "timespec_get"},
               "wall-clock source", hint);
    for (std::size_t i = 0; i < toks().size(); ++i) {
      if (is_free_call(i, "time") || is_free_call(i, "clock")) {
        report("determinism-clock", toks()[i].line,
               "libc wall-clock call `" + toks()[i].text + "()`", hint);
      }
    }
  }

  // -- replay safety --------------------------------------------------------

  /// Flags range-fors and explicit .begin()/.cbegin() iteration over names
  /// declared with an unordered container type — in this file or in one of
  /// its directly-included project headers (extra_names).  Hash iteration
  /// order is implementation-defined; once it feeds bytes, metrics or
  /// traces, replay stops being byte-identical across standard libraries.
  void check_unordered_iter() {
    const auto& t = toks();
    std::set<std::string> names = collect_unordered_names(t);
    names.insert(extra_names_.begin(), extra_names_.end());
    if (names.empty()) return;
    const std::string hint =
        "iterate a sorted snapshot (copy keys/entries into a std::vector and "
        "std::sort) or use std::map/std::set when order reaches any output";
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind == TokKind::kIdent && t[i].text == "for" &&
          t[i + 1].text == "(") {
        // Find the range-for `:` at paren depth 1, then the range expr.
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
          if (t[j].text == "(") ++depth;
          if (t[j].text == ")" && --depth == 0) {
            close = j;
            break;
          }
          if (t[j].text == ":" && depth == 1 && colon == 0) colon = j;
        }
        if (colon == 0 || close == 0) continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (t[j].kind == TokKind::kIdent && names.count(t[j].text)) {
            report("unordered-iter", t[j].line,
                   "range-for over unordered container `" + t[j].text + "`",
                   hint);
            break;
          }
        }
      }
      // Explicit iterator loops / algorithm calls.
      if (t[i].kind == TokKind::kIdent && names.count(t[i].text) &&
          i + 2 < t.size() && (t[i + 1].text == "." || t[i + 1].text == "->") &&
          (t[i + 2].text == "begin" || t[i + 2].text == "cbegin" ||
           t[i + 2].text == "rbegin")) {
        report("unordered-iter", t[i].line,
               "iterator walk over unordered container `" + t[i].text + "`",
               hint);
      }
    }
  }

  // -- DES hot-path hygiene (scope restricted via [rule.*].paths) -----------

  void check_hotpath_function() {
    const auto& t = toks();
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].text == "std" && t[i + 1].text == "::" &&
          t[i + 2].text == "function") {
        report("hotpath-function", t[i].line,
               "std::function in DES hot-path code",
               "use sim::EventFn (sim/event_fn.hpp): small-buffer storage, "
               "no heap allocation in the schedule->fire loop");
      }
    }
  }

  void check_hotpath_alloc() {
    const auto& t = toks();
    const std::string hint =
        "event-path storage must come from sim::EventArena (recycled slab "
        "blocks); construction-time factories need an inline escape";
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      if (t[i].text == "new") {
        // Placement / arena forms are the sanctioned implementation detail:
        // `::new (ptr) T` and `operator new`.
        bool placement =
            (i > 0 && (t[i - 1].text == "::" || t[i - 1].text == "operator"));
        if (!placement) {
          report("hotpath-alloc", t[i].line, "`new` in DES hot-path code",
                 hint);
        }
      } else if (t[i].text == "make_unique" || t[i].text == "make_shared") {
        report("hotpath-alloc", t[i].line,
               "`" + t[i].text + "` in DES hot-path code", hint);
      } else if (is_free_call(i, "malloc") || is_free_call(i, "calloc") ||
                 is_free_call(i, "realloc")) {
        report("hotpath-alloc", t[i].line,
               "`" + t[i].text + "()` in DES hot-path code", hint);
      }
    }
  }

  void check_hotpath_blocking() {
    ban_idents(
        "hotpath-blocking",
        {"mutex", "condition_variable", "condition_variable_any", "sleep_for",
         "sleep_until", "lock_guard", "unique_lock", "scoped_lock",
         "shared_mutex", "recursive_mutex"},
        "blocking primitive in DES code",
        "the DES is single-threaded by contract (docs/PERFORMANCE.md); "
        "threaded-runtime files belong on the rule's allowlist");
  }

  // -- metrics discipline ---------------------------------------------------

  /// A literal that *is* a metric name ("pqra_<layer>_<what>") must live in
  /// src/obs/names.hpp; everywhere else references the constant, so that
  /// exporters/tests/dashboards can never drift from the emitting site.
  void check_metric_names() {
    for (const Token& t : toks()) {
      if (t.kind != TokKind::kString) continue;
      const std::string& s = t.text;
      if (s.rfind("pqra_", 0) != 0 || s.size() <= 5) continue;
      bool name_shaped = true;
      for (char c : s) {
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
          name_shaped = false;
          break;
        }
      }
      if (!name_shaped) continue;
      report("metric-name", t.line,
             "metric-name literal \"" + s + "\" outside src/obs/names.hpp",
             "add a constant to src/obs/names.hpp and reference it "
             "(obs::names::k...)");
    }
  }

  Config cfg_;
  const FileScan* scan_ = nullptr;
  std::set<std::string> extra_names_;
  std::vector<Violation> violations_;
};

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::string normalize(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  if (p.rfind("./", 0) == 0) p = p.substr(2);
  return p;
}

bool has_extension(const Config& cfg, const std::string& path) {
  for (const std::string& ext : cfg.extensions) {
    if (path.size() >= ext.size() &&
        path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
      return true;
    }
  }
  return false;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--config FILE] [--list-rules] PATH...\n"
         "Scans the given files/directories (relative to the working\n"
         "directory) for pqra project-invariant violations.  With no\n"
         "--config, reads .pqra-lint.toml from the working directory when\n"
         "present.  Exit: 0 clean, 1 violations, 2 error.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_file;
  std::vector<std::string> roots;
  bool list_rules = false;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--config") {
      if (++a >= argc) return usage(argv[0]);
      config_file = argv[a];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (list_rules) {
    for (const RuleInfo& r : kRules) {
      std::printf("%-20s %s\n", r.id.c_str(), r.summary.c_str());
    }
    return 0;
  }
  if (roots.empty()) return usage(argv[0]);

  Config cfg;
  if (config_file.empty() && fs::exists(".pqra-lint.toml")) {
    config_file = ".pqra-lint.toml";
  }
  if (!config_file.empty()) {
    std::string err;
    if (!load_config(config_file, cfg, err)) {
      std::cerr << "pqra_lint: " << err << "\n";
      return 2;
    }
  }

  // Collect files (sorted for deterministic diagnostics).
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    fs::path rp(root);
    std::error_code ec;
    if (fs::is_directory(rp, ec)) {
      for (fs::recursive_directory_iterator it(rp, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (!it->is_regular_file()) continue;
        std::string p = normalize(it->path().generic_string());
        if (has_extension(cfg, p)) files.push_back(p);
      }
    } else if (fs::is_regular_file(rp, ec)) {
      files.push_back(normalize(rp.generic_string()));
    } else {
      std::cerr << "pqra_lint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Unordered-container declarations from a header, cached by resolved
  // path.  Quoted includes resolve the way the build does: against src/
  // (the project include root), then the including file's own directory.
  std::map<std::string, std::set<std::string>> header_names;
  auto names_from_header = [&header_names](const fs::path& candidate)
      -> const std::set<std::string>* {
    std::error_code ec;
    if (!fs::is_regular_file(candidate, ec)) return nullptr;
    std::string key = normalize(candidate.generic_string());
    auto it = header_names.find(key);
    if (it == header_names.end()) {
      std::ifstream in(candidate, std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      FileScan hs = tokenize(key, ss.str());
      it = header_names.emplace(key, collect_unordered_names(hs.tokens)).first;
    }
    return &it->second;
  };

  Linter linter(cfg);
  for (const std::string& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::cerr << "pqra_lint: cannot read " << f << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    FileScan scan = tokenize(f, ss.str());
    std::set<std::string> extra;
    for (const std::string& inc : scan.includes) {
      for (const fs::path& candidate :
           {fs::path("src") / inc, fs::path(f).parent_path() / inc,
            fs::path(inc)}) {
        if (const std::set<std::string>* names = names_from_header(candidate)) {
          extra.insert(names->begin(), names->end());
          break;
        }
      }
    }
    linter.lint_file(scan, std::move(extra));
  }

  std::vector<Violation> sorted = linter.violations();
  std::sort(sorted.begin(), sorted.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  for (const Violation& v : sorted) {
    std::cout << v.path << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n    hint: " << v.hint << "\n";
  }
  if (!sorted.empty()) {
    std::cout << "pqra_lint: " << sorted.size() << " violation"
              << (sorted.size() == 1 ? "" : "s") << " in " << files.size()
              << " files scanned\n";
    return 1;
  }
  std::cout << "pqra_lint: clean (" << files.size() << " files scanned)\n";
  return 0;
}
