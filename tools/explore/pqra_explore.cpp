/// \file pqra_explore.cpp
/// VOPR-style schedule-exploration fuzzer (docs/EXPLORATION.md).
///
/// Seed search: every seed expands to a complete ScheduleProfile
/// (tools/explore/profile.hpp) — cluster shape, workload, delay model,
/// mutated fault plan — which runs as a short deterministic simulation whose
/// recorded history is piped through the core/spec checkers and invariant
/// probes.  Violations are shrunk to locally-minimal profiles
/// (tools/explore/shrink.hpp) and emitted as self-contained `--replay`
/// files.
///
///   pqra_explore --seed-range 0:2000            # fixed seed sweep
///   pqra_explore --minutes 10 --jobs 4          # time-boxed nightly run
///   pqra_explore --replay repro-17-R4.txt       # re-run a repro twice
///
/// Exit codes: 0 = clean, 1 = violations found (or replay mismatch),
/// 2 = usage/IO error.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "explore/profile.hpp"
#include "explore/runner.hpp"
#include "explore/shrink.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "sim/parallel_runner.hpp"

namespace {

using pqra::explore::RunOutcome;
using pqra::explore::ScheduleProfile;
using pqra::explore::ShrinkResult;

struct CliOptions {
  bool have_range = false;
  std::uint64_t seed_begin = 0;
  std::uint64_t seed_end = 0;
  double minutes = 0.0;
  std::uint64_t start_seed = 0;
  std::size_t jobs = 1;
  std::string repro_dir;
  std::string corpus_dir;
  std::string replay_file;
  std::string metrics_out;
  std::size_t max_violations = 10;
  std::size_t shrink_budget = 500;
  /// Flight-recorder ring capacity for repro dumps (0 = off): the minimal
  /// profile is re-run once with a recorder bound to its transport and the
  /// last N message events land in `<repro>.flightrec.txt`.
  std::size_t flightrec = 0;
  /// Run the sweep's first N seeds once per event-queue implementation
  /// (PQRA_QUEUE=heap vs calendar) and assert identical fingerprints before
  /// exploring (0 = off).  The calendar queue's equivalence bar
  /// (docs/PERFORMANCE.md), wired into the nightly CI sweep.
  std::size_t queue_diff = 0;
  bool no_shrink = false;
  bool quiet = false;
  /// Deterministically push every (non-alg1) from_seed profile into a
  /// multi-key shape before running it — the keyspace sweep used by the
  /// explore_multikey_smoke tier-1 test (docs/SHARDING.md).
  bool force_multikey = false;
  /// Deterministically make every (non-alg1) from_seed profile durable and
  /// add seeded durability faults — the crash-replay-compare sweep used by
  /// the explore_durability_smoke tier-1 test (docs/DURABILITY.md).
  bool force_durable = false;
};

/// The --force-multikey transform: a pure function of the profile's seed
/// (dedicated stream 3; from_seed uses 1 and 2), so sweeps stay
/// reproducible and --jobs-invariant.  alg1 profiles are left alone — the
/// iterative scenario owns its register layout.
ScheduleProfile force_multikey(ScheduleProfile p) {
  if (p.alg1) return p;
  pqra::util::Rng mk = pqra::util::Rng(p.seed).fork(3);
  if (p.keys_per_client < 2) {
    p.keys_per_client = 2 + static_cast<std::size_t>(mk.below(15));
  }
  if (p.key_skew == 0.0 && mk.bernoulli(0.5)) {
    p.key_skew = 0.6 + 0.39 * mk.uniform01();
  }
  if (p.replicas == 0 && mk.bernoulli(0.7)) {
    p.replicas = p.quorum_size + static_cast<std::size_t>(mk.below(
                     p.num_servers - p.quorum_size + 1));
    p.ring_vnodes = 4 + static_cast<std::size_t>(mk.below(13));
  }
  // Sharded stores have no whole-store snapshot read.
  if (p.replicas > 0) p.snapshot_reads = false;
  return p;
}

/// The --force-durable transform: a pure function of the profile's seed
/// (dedicated stream 4; from_seed uses 1 and 2, --force-multikey uses 3).
/// Makes the run durable, draws a checkpoint cadence, and lands at least
/// one durability fault edit so the crash-replay-compare oracle always has
/// torn/lost syncs to chew on.  alg1 profiles are left alone.
ScheduleProfile force_durable(ScheduleProfile p) {
  if (p.alg1) return p;
  pqra::util::Rng d = pqra::util::Rng(p.seed).fork(4);
  p.durable = true;
  p.snapshot_every = std::size_t{4} << d.below(5);  // 4..64
  const std::size_t fault_keys = p.keys_per_client > 1 ? p.num_keys() : 0;
  const std::size_t extra = static_cast<std::size_t>(d.below(3));
  for (std::size_t i = 0; i < 1 + extra; ++i) {
    // Durability-only edits: loop until the mutate draw lands in the
    // durability case so every sweep seed actually exercises the storage
    // fault machinery (the general-purpose edits already ran in from_seed).
    const std::size_t before = p.faults.events().size();
    while (p.faults.events().size() == before) {
      pqra::net::FaultPlan probe_plan = p.faults;
      probe_plan.mutate(p.num_servers, p.horizon, d, fault_keys,
                        /*durability=*/true);
      if (probe_plan.events().size() > before &&
          (probe_plan.events().back().kind == pqra::net::FaultKind::kTornWrite ||
           probe_plan.events().back().kind == pqra::net::FaultKind::kFsyncLoss ||
           probe_plan.events().back().kind ==
               pqra::net::FaultKind::kClearFsyncLoss)) {
        p.faults = std::move(probe_plan);
      }
    }
  }
  return p;
}

ScheduleProfile profile_for(std::uint64_t seed, const CliOptions& opt) {
  ScheduleProfile p = ScheduleProfile::from_seed(seed);
  if (opt.force_multikey) p = force_multikey(std::move(p));
  if (opt.force_durable) p = force_durable(std::move(p));
  return p;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --seed-range A:B      explore seeds A (inclusive) to B "
         "(exclusive)\n"
      << "  --minutes M           explore for M wall-clock minutes from "
         "--start-seed\n"
      << "  --start-seed S        first seed for --minutes mode (default 0)\n"
      << "  --jobs N              parallel workers (default 1; 0 = all "
         "cores)\n"
      << "  --repro-dir DIR       write shrunk repro files into DIR\n"
      << "  --corpus-dir DIR      write every pre-shrink violating profile "
         "into DIR\n"
      << "  --replay FILE         re-run a repro/profile file twice and "
         "verify determinism\n"
      << "  --metrics-out FILE    write the obs JSON metrics snapshot to "
         "FILE\n"
      << "  --max-violations N    stop after N violations (default 10)\n"
      << "  --shrink-budget N     candidate runs per shrink (default 500)\n"
      << "  --flightrec N         re-run each shrunk repro with an N-record\n"
         "                        flight recorder and dump the message tail\n"
         "                        to <repro>.flightrec.txt (default 0 = "
         "off)\n"
      << "  --queue-diff N        before exploring, run the first N seeds\n"
         "                        under both PQRA_QUEUE=heap and calendar "
         "and\n"
         "                        fail on any fingerprint divergence "
         "(default\n"
         "                        0 = off)\n"
      << "  --no-shrink           report violations without shrinking\n"
      << "  --force-multikey      push every explored profile into a "
         "multi-key\n"
         "                        sharded shape (seed-deterministic)\n"
      << "  --force-durable       run every explored profile with durable\n"
         "                        (WAL + snapshot) replicas and seeded\n"
         "                        durability faults (seed-deterministic)\n"
      << "  --quiet               suppress progress lines\n";
  return 2;
}

bool parse_u64_arg(const std::string& s, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0';
}

std::string sanitize(const std::string& rule) {
  std::string s = rule;
  for (char& ch : s) {
    if (ch == ':' || ch == '/' || ch == ' ') ch = '_';
  }
  return s;
}

/// Repro/corpus file: `#` headers (rule, fingerprint, provenance) followed
/// by the profile in ScheduleProfile::serialize() form — self-contained,
/// parseable by --replay.
bool write_repro_file(const std::string& path, const ScheduleProfile& profile,
                      const RunOutcome& outcome, std::uint64_t original_seed,
                      const std::string& provenance) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "pqra_explore: cannot write " << path << "\n";
    return false;
  }
  out << "# pqra_explore repro\n";
  out << "# rule " << outcome.rule << "\n";
  out << "# detail " << outcome.detail << "\n";
  out << "# fingerprint " << outcome.fingerprint << "\n";
  out << "# events " << outcome.events_processed << "\n";
  out << "# ops " << outcome.ops_checked << "\n";
  out << "# original-seed " << original_seed << "\n";
  if (!provenance.empty()) out << "# " << provenance << "\n";
  out << profile.serialize();
  return out.good();
}

/// Re-runs \p profile with a bound flight recorder and dumps the ring next
/// to the repro.  The recorder is a pure observer, so the re-run must land
/// on the repro's fingerprint — a divergence here is itself a bug, and the
/// dump says so instead of lying about what schedule it recorded.
bool write_flightrec_file(const std::string& path,
                          const ScheduleProfile& profile,
                          const RunOutcome& expected, std::size_t capacity) {
  pqra::obs::FlightRecorder recorder(capacity);
  const RunOutcome rerun = pqra::explore::run_profile(profile, &recorder);
  std::ofstream out(path);
  if (!out) {
    std::cerr << "pqra_explore: cannot write " << path << "\n";
    return false;
  }
  out << "# pqra_explore flight recorder dump\n";
  out << "# rule " << expected.rule << "\n";
  out << "# fingerprint " << rerun.fingerprint << "\n";
  if (rerun.fingerprint != expected.fingerprint ||
      rerun.events_processed != expected.events_processed) {
    out << "# WARNING: recorder re-run diverged from the repro run "
        << "(expected fingerprint " << expected.fingerprint << ", events "
        << expected.events_processed << ")\n";
  }
  recorder.dump(out);
  return out.good();
}

int replay(const CliOptions& opt) {
  std::ifstream in(opt.replay_file);
  if (!in) {
    std::cerr << "pqra_explore: cannot read " << opt.replay_file << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // Optional "# rule X" header pins which rule the file reproduces.
  std::string expected_rule;
  {
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      const std::string prefix = "# rule ";
      if (line.rfind(prefix, 0) == 0) {
        expected_rule = line.substr(prefix.size());
        break;
      }
    }
  }

  ScheduleProfile profile;
  try {
    profile = ScheduleProfile::parse(text);
  } catch (const std::exception& e) {
    std::cerr << "pqra_explore: bad replay file: " << e.what() << "\n";
    return 2;
  }

  const RunOutcome first = pqra::explore::run_profile(profile);
  const RunOutcome second = pqra::explore::run_profile(profile);

  std::cout << "replay " << opt.replay_file << "\n"
            << "  run 1: rule=" << (first.violation ? first.rule : "none")
            << " fingerprint=" << first.fingerprint
            << " events=" << first.events_processed
            << " ops=" << first.ops_checked << "\n"
            << "  run 2: rule=" << (second.violation ? second.rule : "none")
            << " fingerprint=" << second.fingerprint
            << " events=" << second.events_processed
            << " ops=" << second.ops_checked << "\n";
  if (first.violation) std::cout << "  detail: " << first.detail << "\n";

  bool ok = true;
  if (first.fingerprint != second.fingerprint ||
      first.events_processed != second.events_processed ||
      first.violation != second.violation || first.rule != second.rule ||
      first.ops_checked != second.ops_checked) {
    std::cout << "REPLAY DIVERGED: the two runs did not execute the same "
                 "schedule\n";
    ok = false;
  }
  if (!expected_rule.empty() &&
      (!first.violation || first.rule != expected_rule)) {
    std::cout << "REPLAY MISMATCH: expected rule " << expected_rule
              << ", got " << (first.violation ? first.rule : "none") << "\n";
    ok = false;
  }
  if (ok) std::cout << "replay deterministic\n";
  return ok ? 0 : 1;
}

/// --queue-diff: every seed's profile must execute the exact same event
/// schedule under the binary heap and the calendar queue.  A divergence is
/// a queue-ordering bug by construction (the two implementations only agree
/// when both honor strict (time, seq) order), so it fails the sweep before
/// any exploration happens.
int queue_diff_check(const CliOptions& opt, pqra::sim::ParallelRunner& pool) {
  struct ModePair {
    RunOutcome heap;
    RunOutcome calendar;
  };
  const std::uint64_t base = opt.have_range ? opt.seed_begin : opt.start_seed;
  const std::vector<ModePair> pairs =
      pool.map<ModePair>(opt.queue_diff, [base, &opt](std::size_t i) {
        const ScheduleProfile profile = profile_for(base + i, opt);
        return ModePair{
            pqra::explore::run_profile(profile, pqra::sim::QueueMode::kHeap),
            pqra::explore::run_profile(profile,
                                       pqra::sim::QueueMode::kCalendar)};
      });
  std::size_t diverged = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const ModePair& p = pairs[i];
    if (p.heap.fingerprint == p.calendar.fingerprint &&
        p.heap.events_processed == p.calendar.events_processed &&
        p.heap.violation == p.calendar.violation &&
        p.heap.rule == p.calendar.rule) {
      continue;
    }
    ++diverged;
    std::cerr << "QUEUE DIVERGENCE: seed=" << (base + i)
              << "\n  heap:     fingerprint=" << p.heap.fingerprint
              << " events=" << p.heap.events_processed
              << " rule=" << (p.heap.violation ? p.heap.rule : "none")
              << "\n  calendar: fingerprint=" << p.calendar.fingerprint
              << " events=" << p.calendar.events_processed
              << " rule=" << (p.calendar.violation ? p.calendar.rule : "none")
              << "\n";
  }
  std::cout << "queue-diff: " << pairs.size() << " seed(s) from " << base
            << ", " << diverged << " divergence(s)\n";
  return diverged == 0 ? 0 : 1;
}

int explore(const CliOptions& opt) {
  namespace names = pqra::obs::names;
  pqra::obs::Registry registry;
  pqra::obs::Counter& runs_total =
      registry.counter(names::kExploreRuns, "Schedules explored");
  pqra::obs::Counter& violations_total =
      registry.counter(names::kExploreViolations, "Violating schedules found");
  pqra::obs::Counter& ops_total = registry.counter(
      names::kExploreOpsChecked, "Operations piped through the spec checkers");
  pqra::obs::Counter& events_total = registry.counter(
      names::kExploreEvents, "DES events executed across explored schedules");
  pqra::obs::Counter& shrink_attempts = registry.counter(
      names::kExploreShrinkAttempts, "Shrink candidate runs executed");
  pqra::obs::Counter& shrink_accepted = registry.counter(
      names::kExploreShrinkAccepted, "Shrink candidates accepted");
  pqra::obs::Gauge& last_fingerprint = registry.gauge(
      names::kExploreLastFingerprint, "Fingerprint of the last explored run");

  pqra::sim::ParallelRunner pool(opt.jobs);
  if (opt.queue_diff > 0) {
    const int rc = queue_diff_check(opt, pool);
    if (rc != 0) return rc;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opt.minutes * 60.0));

  std::uint64_t next_seed = opt.have_range ? opt.seed_begin : opt.start_seed;
  std::size_t violations = 0;
  std::vector<std::string> repro_paths;
  bool done = false;

  while (!done) {
    if (opt.have_range && next_seed >= opt.seed_end) break;
    if (!opt.have_range &&
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::size_t batch = std::max<std::size_t>(16, pool.jobs() * 8);
    if (opt.have_range) {
      batch = std::min<std::size_t>(batch, opt.seed_end - next_seed);
    }
    const std::uint64_t base = next_seed;
    const std::vector<RunOutcome> outcomes =
        pool.map<RunOutcome>(batch, [base, &opt](std::size_t i) {
          return pqra::explore::run_profile(profile_for(base + i, opt));
        });
    next_seed += batch;

    // Results merge in seed order, so every artifact and log line is
    // byte-identical across --jobs values (ParallelRunner's contract).
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const RunOutcome& out = outcomes[i];
      const std::uint64_t seed = base + i;
      runs_total.inc();
      ops_total.inc(out.ops_checked);
      events_total.inc(out.events_processed);
      last_fingerprint.set(static_cast<double>(out.fingerprint));
      if (!out.violation) continue;

      ++violations;
      violations_total.inc();
      const ScheduleProfile profile = profile_for(seed, opt);
      std::cerr << "violation: seed=" << seed << " rule=" << out.rule
                << " fingerprint=" << out.fingerprint << "\n  " << out.detail
                << "\n";
      if (!opt.corpus_dir.empty()) {
        write_repro_file(opt.corpus_dir + "/corpus-" + std::to_string(seed) +
                             "-" + sanitize(out.rule) + ".txt",
                         profile, out, seed, "corpus (pre-shrink)");
      }
      ScheduleProfile minimal = profile;
      RunOutcome minimal_outcome = out;
      if (!opt.no_shrink) {
        const ShrinkResult shrunk =
            pqra::explore::shrink(profile, out, opt.shrink_budget);
        shrink_attempts.inc(shrunk.stats.attempts);
        shrink_accepted.inc(shrunk.stats.accepted);
        std::cerr << "  shrunk: cost " << profile.cost() << " -> "
                  << shrunk.profile.cost() << " (" << shrunk.stats.attempts
                  << " candidate runs, " << shrunk.stats.accepted
                  << " accepted)\n";
        minimal = shrunk.profile;
        minimal_outcome = shrunk.outcome;
      }
      if (!opt.repro_dir.empty()) {
        std::ostringstream provenance;
        provenance << "original-cost " << profile.cost() << " shrunk-cost "
                   << minimal.cost();
        const std::string path = opt.repro_dir + "/repro-" +
                                 std::to_string(seed) + "-" +
                                 sanitize(minimal_outcome.rule) + ".txt";
        if (write_repro_file(path, minimal, minimal_outcome, seed,
                             provenance.str())) {
          repro_paths.push_back(path);
          std::cerr << "  repro: " << path << "\n";
          if (opt.flightrec > 0) {
            std::string dump = path;
            const std::string suffix = ".txt";
            if (dump.size() >= suffix.size() &&
                dump.compare(dump.size() - suffix.size(), suffix.size(),
                             suffix) == 0) {
              dump.resize(dump.size() - suffix.size());
            }
            dump += ".flightrec.txt";
            if (write_flightrec_file(dump, minimal, minimal_outcome,
                                     opt.flightrec)) {
              std::cerr << "  flightrec: " << dump << "\n";
            }
          }
        }
      }
      if (violations >= opt.max_violations) {
        std::cerr << "stopping: reached --max-violations="
                  << opt.max_violations << "\n";
        done = true;
        break;
      }
    }
    if (!opt.quiet) {
      std::cerr << "explored " << runs_total.value() << " schedules, "
                << violations << " violation(s)\n";
    }
  }

  if (!opt.metrics_out.empty()) {
    std::ofstream mout(opt.metrics_out);
    if (!mout) {
      std::cerr << "pqra_explore: cannot write " << opt.metrics_out << "\n";
      return 2;
    }
    pqra::obs::write_json(registry, mout);
  }
  std::cout << "pqra_explore: " << runs_total.value() << " schedules, "
            << violations << " violation(s)";
  if (!repro_paths.empty()) {
    std::cout << ", " << repro_paths.size() << " repro file(s)";
  }
  std::cout << "\n";
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed-range") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      const std::string range = v;
      const std::size_t colon = range.find(':');
      if (colon == std::string::npos ||
          !parse_u64_arg(range.substr(0, colon), &opt.seed_begin) ||
          !parse_u64_arg(range.substr(colon + 1), &opt.seed_end) ||
          opt.seed_end <= opt.seed_begin) {
        return usage(argv[0]);
      }
      opt.have_range = true;
    } else if (arg == "--minutes") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.minutes = std::atof(v);
      if (opt.minutes <= 0.0) return usage(argv[0]);
    } else if (arg == "--start-seed") {
      const char* v = next();
      if (v == nullptr || !parse_u64_arg(v, &opt.start_seed)) {
        return usage(argv[0]);
      }
    } else if (arg == "--jobs") {
      const char* v = next();
      std::uint64_t jobs = 0;
      if (v == nullptr || !parse_u64_arg(v, &jobs)) return usage(argv[0]);
      opt.jobs = static_cast<std::size_t>(jobs);
    } else if (arg == "--repro-dir") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.repro_dir = v;
    } else if (arg == "--corpus-dir") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.corpus_dir = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.replay_file = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.metrics_out = v;
    } else if (arg == "--max-violations") {
      const char* v = next();
      std::uint64_t n = 0;
      if (v == nullptr || !parse_u64_arg(v, &n) || n == 0) {
        return usage(argv[0]);
      }
      opt.max_violations = static_cast<std::size_t>(n);
    } else if (arg == "--shrink-budget") {
      const char* v = next();
      std::uint64_t n = 0;
      if (v == nullptr || !parse_u64_arg(v, &n)) return usage(argv[0]);
      opt.shrink_budget = static_cast<std::size_t>(n);
    } else if (arg == "--flightrec") {
      const char* v = next();
      std::uint64_t n = 0;
      if (v == nullptr || !parse_u64_arg(v, &n) || n == 0) {
        return usage(argv[0]);
      }
      opt.flightrec = static_cast<std::size_t>(n);
    } else if (arg == "--queue-diff") {
      const char* v = next();
      std::uint64_t n = 0;
      if (v == nullptr || !parse_u64_arg(v, &n) || n == 0) {
        return usage(argv[0]);
      }
      opt.queue_diff = static_cast<std::size_t>(n);
    } else if (arg == "--no-shrink") {
      opt.no_shrink = true;
    } else if (arg == "--force-multikey") {
      opt.force_multikey = true;
    } else if (arg == "--force-durable") {
      opt.force_durable = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (!opt.replay_file.empty()) return replay(opt);
  if (!opt.have_range && opt.minutes <= 0.0 && opt.queue_diff == 0) {
    return usage(argv[0]);
  }
  return explore(opt);
}
