#include "explore/runner.hpp"

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "core/keyspace/hash_ring.hpp"
#include "core/quorum_register_client.hpp"
#include "core/server_process.hpp"
#include "core/spec/batch.hpp"
#include "core/spec/probes.hpp"
#include "iter/alg1_des.hpp"
#include "net/sim_transport.hpp"
#include "quorum/probabilistic.hpp"
#include "sim/profiler.hpp"
#include "storage/durable_store.hpp"
#include "storage/mem_disk.hpp"
#include "util/codec.hpp"
#include "util/zipf.hpp"

namespace pqra::explore {

namespace {

namespace spec = core::spec;

/// "[probe:xxx] ..." -> "probe:xxx" (probes tag their violations with their
/// rule id so the shrinker can match on it).
std::string probe_rule(const std::string& violation) {
  if (!violation.empty() && violation.front() == '[') {
    const std::size_t close = violation.find(']');
    if (close != std::string::npos) return violation.substr(1, close - 1);
  }
  return "probe";
}

void fold(spec::CheckResult& into, const spec::CheckResult& from) {
  for (const std::string& v : from.violations) into.fail(v);
}

/// Crash-replay-compare oracle (docs/DURABILITY.md): fired by the fault
/// injector on every real crashed->up transition.  It models the crash
/// (drop the node's volatile storage), snapshots the durable images, lets
/// the DurableStore recover the replica, and cross-checks the recovered
/// store against an *independent* fold of those same durable bytes —
/// snapshot entries then the honest CRC-checked WAL prefix, ts-max merge.
/// Any divergence (a planted CRC-skip bug, a replay that resurrects torn
/// garbage, a truncation that loses acked records) fails under the rule id
/// "probe:durable-recovery", which shrinks and replays like any other
/// violation.  Runs synchronously inside the existing recover fault event:
/// durable runs add zero simulator events.
class RecoveryOracle final : public net::NodeLifecycleListener {
 public:
  RecoveryOracle(std::deque<storage::MemDisk>& disks,
                 std::deque<storage::DurableStore>& stores,
                 std::deque<core::ServerProcess>& servers,
                 spec::StoreProbe& probe, spec::CheckResult& failures)
      : disks_(disks),
        stores_(stores),
        servers_(servers),
        probe_(probe),
        failures_(failures) {}

  void on_recover(net::NodeId node) override {
    if (node >= disks_.size()) return;
    storage::MemDisk& disk = disks_[node];
    disk.drop_volatile();
    // Capture the durable images BEFORE recover(): the store's recovery
    // repairs the log (wal_truncate_to), and the oracle must judge the
    // bytes the crash actually left behind.
    const util::Bytes snapshot = disk.durable_snapshot();
    const util::Bytes log = disk.durable_wal();
    stores_[node].recover();

    // Independent replay of the durable prefix: snapshot entries, then the
    // honest CRC-checked WAL fold.  Shares only the record codec with
    // DurableStore::recover(), none of its control flow.
    std::map<core::RegisterId, std::pair<core::Timestamp, core::Value>>
        expected;
    if (!snapshot.empty()) {
      for (core::Replica::StoreEntry& e :
           core::Replica::decode_store(snapshot)) {
        expected[e.reg] = {e.ts, std::move(e.value)};
      }
    }
    for (storage::wal::Record& r : storage::wal::replay_log(log).records) {
      auto it = expected.find(r.reg);
      if (it == expected.end() || r.ts >= it->second.first) {
        expected[r.reg] = {r.ts, std::move(r.value)};
      }
    }

    const core::Replica& replica = servers_[node].replica();
    const std::vector<core::Replica::StoreEntry> recovered =
        core::Replica::decode_store(replica.encode_store());
    for (const core::Replica::StoreEntry& e : recovered) {
      auto it = expected.find(e.reg);
      if (it == expected.end()) {
        fail(node, e.reg, "recovered an entry the durable prefix lacks");
      } else if (e.ts != it->second.first ||
                 e.value.bytes() != it->second.second.bytes()) {
        std::ostringstream os;
        os << "recovered (ts=" << e.ts << ", " << e.value.size()
           << "B) but the durable prefix holds (ts=" << it->second.first
           << ", " << it->second.second.size() << "B)";
        fail(node, e.reg, os.str());
      }
    }
    if (recovered.size() != expected.size()) {
      std::ostringstream os;
      os << "recovered " << recovered.size()
         << " entries but the durable prefix holds " << expected.size();
      fail(node, 0, os.str());
    }
    // The rewind to the durable prefix is legitimate (acked-but-unsynced
    // writes die with the volatile state); reset the monotonicity watch so
    // the store-ts probe doesn't re-report what the oracle just judged.
    probe_.forget(node);
  }

 private:
  void fail(net::NodeId node, core::RegisterId reg, const std::string& why) {
    std::ostringstream os;
    os << "[probe:durable-recovery] server=" << node << ", reg=" << reg
       << ": " << why;
    failures_.fail(os.str());
  }

  std::deque<storage::MemDisk>& disks_;
  std::deque<storage::DurableStore>& stores_;
  std::deque<core::ServerProcess>& servers_;
  spec::StoreProbe& probe_;
  spec::CheckResult& failures_;
};

core::RetryPolicy explore_retry() {
  core::RetryPolicy retry;
  retry.rpc_timeout = 6.0;
  retry.backoff_factor = 1.5;
  retry.max_backoff = 24.0;
  retry.jitter = 0.1;
  return retry;
}

/// Issues one client's randomized op sequence, one op at a time (condition
/// (3) of §3: no pipelining per register), with a short think delay before
/// each op so client interleavings vary across profiles.  All draws come
/// from the driver's forked Rng stream.
struct ClientDriver {
  sim::Simulator* sim = nullptr;
  core::QuorumRegisterClient* client = nullptr;
  util::Rng rng;
  std::size_t remaining = 0;
  std::size_t num_regs = 1;
  core::RegisterId own_reg = 0;
  bool snapshot_reads = false;
  std::int64_t next_value = 0;
  // Keyspace shape (docs/SHARDING.md).  Key k = slot * num_clients + owner,
  // so the single-key defaults collapse to the legacy workload with the
  // exact same draw sequence: writes target own_reg without a draw, reads
  // draw uniformly over num_regs (== num_clients when keys_per_client is 1).
  std::size_t keys_per_client = 1;
  std::size_t writers_per_key = 1;
  std::size_t num_clients = 1;
  std::size_t own_index = 0;
  const util::Zipfian* zipf = nullptr;

  void step() {
    if (remaining == 0) return;
    --remaining;
    sim->schedule_in(rng.uniform01() * 2.0, sim::EventTag::kWorkload,
                     [this] { issue(); });
  }

  core::RegisterId pick_write_key() {
    if (keys_per_client == 1 && writers_per_key == 1) return own_reg;
    const std::size_t slot =
        keys_per_client > 1 ? static_cast<std::size_t>(rng.below(
                                  keys_per_client))
                            : 0;
    // writers_per_key > 1: this client also writes keys owned by the next
    // w-1 clients (mod c), making those keys contended.
    const std::size_t owner =
        writers_per_key > 1
            ? (own_index + static_cast<std::size_t>(rng.below(
                               writers_per_key))) %
                  num_clients
            : own_index;
    return static_cast<core::RegisterId>(slot * num_clients + owner);
  }

  core::RegisterId pick_read_key() {
    if (zipf != nullptr) {
      return static_cast<core::RegisterId>(zipf->draw(rng));
    }
    return static_cast<core::RegisterId>(rng.below(num_regs));
  }

  void issue() {
    if (rng.bernoulli(0.4)) {
      ++next_value;
      client->write(pick_write_key(), util::encode(next_value),
                    [this](core::Timestamp) { step(); });
    } else if (snapshot_reads && rng.bernoulli(0.3)) {
      std::vector<core::RegisterId> regs;
      regs.reserve(num_regs);
      for (std::size_t r = 0; r < num_regs; ++r) {
        regs.push_back(static_cast<core::RegisterId>(r));
      }
      client->read_snapshot(std::move(regs),
                            [this](std::vector<core::ReadResult>) { step(); });
    } else {
      client->read(pick_read_key(), [this](core::ReadResult) { step(); });
    }
  }
};

/// Direct register workload: clients [n, n+c) against servers [0, n).
/// Single-key profiles give each client one register (client i is register
/// i's single writer); multi-key profiles spread keys_per_client keys per
/// client over the keyspace, optionally Zipf-skewed reads, contended
/// writers, and consistent-hash replica groups (docs/SHARDING.md).
RunOutcome run_direct(const ScheduleProfile& p, sim::QueueMode mode,
                      obs::FlightRecorder* recorder) {
  RunOutcome out;
  util::Rng master(p.seed);
  const auto n = static_cast<net::NodeId>(p.num_servers);
  const std::size_t c = p.num_clients;
  const std::size_t total_keys = p.num_keys();
  const bool sharded = p.replicas > 0;

  core::keyspace::HashRing ring(p.ring_vnodes);
  if (sharded) {
    for (net::NodeId s = 0; s < n; ++s) ring.add_node(s);
  }
  // Sharded runs size the quorum system to the replica group: ServerId on
  // the wire is a position within the key's group, resolved per key.
  quorum::ProbabilisticQuorums quorums(sharded ? p.replicas : p.num_servers,
                                       p.quorum_size);
  sim::Simulator sim{mode};
  const std::unique_ptr<sim::DelayModel> delay = p.delay.make();
  net::SimTransport transport(sim, *delay, master.fork(10),
                              static_cast<net::NodeId>(p.num_servers + c));
  if (recorder != nullptr) transport.bind_flight_recorder(recorder);

  std::deque<core::ServerProcess> servers;
  for (net::NodeId s = 0; s < n; ++s) {
    if (p.gossip_interval > 0.0) {
      core::GossipOptions gossip;
      gossip.interval = p.gossip_interval;
      gossip.group_base = 0;
      gossip.group_size = p.num_servers;
      servers.emplace_back(transport, s, sim, gossip,
                           master.fork(200 + static_cast<std::uint64_t>(s)));
    } else {
      servers.emplace_back(transport, s);
    }
    if (p.bug_cross_key) {
      servers.back().replica().set_test_cross_key_probe_bug(true);
    }
  }

  // Durable replicas (docs/DURABILITY.md): one deterministic MemDisk and
  // one DurableStore per server.  The disk's RNG stream (300+s) is forked
  // only on durable runs — fork() is const, so non-durable runs keep their
  // exact draw sequence — and is consumed only when a torn-write fault
  // picks a tear offset, so fault-free durable runs stay byte-identical to
  // their non-durable twins.
  std::deque<storage::MemDisk> disks;
  std::deque<storage::DurableStore> stores;
  if (p.durable) {
    for (net::NodeId s = 0; s < n; ++s) {
      disks.emplace_back(s, &transport.faults(),
                         master.fork(300 + static_cast<std::uint64_t>(s)));
      stores.emplace_back(disks.back(),
                          storage::DurableStore::Options{p.snapshot_every});
      stores.back().attach(servers[s].replica());
      if (p.bug_skip_crc) stores.back().set_test_skip_crc_bug(true);
    }
  }

  spec::HistoryRecorder history;
  core::ClientOptions options;
  options.monotone = p.monotone;
  options.read_repair = p.read_repair;
  options.write_back = p.write_back;
  options.retry = explore_retry();
  if (sharded) options.ring = &ring;

  std::deque<core::QuorumRegisterClient> clients;
  for (std::size_t i = 0; i < c; ++i) {
    clients.emplace_back(sim, transport,
                         static_cast<net::NodeId>(p.num_servers + i), quorums,
                         /*server_base=*/0, master.fork(500 + i), options,
                         &history);
  }

  // Every key carries a preloaded initial so reads before the first write
  // are well-defined for [R2] — on every server under full replication, on
  // the key's ring group only when sharded.  One shared zero value: copies
  // alias (net/value.hpp), so this is a refcount bump per replica instead
  // of an allocation per replica.
  const core::Value zero = util::encode<std::int64_t>(0);
  std::vector<net::NodeId> group;
  for (std::size_t r = 0; r < total_keys; ++r) {
    const auto reg = static_cast<core::RegisterId>(r);
    if (sharded) {
      ring.replica_group(reg, p.replicas, group);
      for (net::NodeId owner : group) {
        servers[owner].replica().preload(reg, zero);
      }
    } else {
      for (core::ServerProcess& s : servers) {
        s.replica().preload(reg, zero);
      }
    }
    history.record_initial(reg);
  }
  // Preload bypasses the store listener; an explicit checkpoint makes the
  // initial vector durable, so a server crashing before its first write
  // recovers its preloaded keys instead of an empty store.
  for (storage::DurableStore& store : stores) store.checkpoint();

  // Zipfian read skew over the whole keyspace; shared by all drivers (each
  // draw consumes one uniform from the calling driver's own stream).
  std::optional<util::Zipfian> zipf;
  if (p.key_skew > 0.0) zipf.emplace(total_keys, p.key_skew);

  std::deque<ClientDriver> drivers;
  for (std::size_t i = 0; i < c; ++i) {
    ClientDriver d;
    d.sim = &sim;
    d.client = &clients[i];
    d.rng = master.fork(900 + i);
    d.remaining = p.ops_per_client;
    d.num_regs = total_keys;
    d.own_reg = static_cast<core::RegisterId>(i);
    d.snapshot_reads = p.snapshot_reads;
    d.keys_per_client = p.keys_per_client;
    d.writers_per_key = p.writers_per_key;
    d.num_clients = c;
    d.own_index = i;
    if (zipf.has_value()) d.zipf = &*zipf;
    drivers.push_back(d);
  }

  // Declared before the fault plan installs: the recovery oracle hangs off
  // the injector's lifecycle hook and folds into the same probe state.
  spec::StoreProbe probe;
  spec::CheckResult probe_failures;
  std::optional<RecoveryOracle> oracle;
  if (p.durable) {
    oracle.emplace(disks, stores, servers, probe, probe_failures);
    transport.faults().set_lifecycle_listener(&*oracle);
  }

  // Key-addressed fault targets resolve to the key's primary owner — ring
  // primary when sharded, round-robin owner otherwise.
  net::FaultPlan plan = p.faults;
  if (plan.has_key_targets()) {
    plan = plan.resolve_keys([&](net::KeyId key) {
      return sharded ? ring.primary(key)
                     : static_cast<net::NodeId>(key % p.num_servers);
    });
  }
  plan.install(sim, transport);
  // Horizon recovery, scheduled AFTER the plan so plan events at exactly
  // the horizon fire first: from here on the cluster is fault-free and all
  // pending operations can complete — [R1] stays a checkable property.
  sim.schedule_at(p.horizon, sim::EventTag::kFault, [&transport, n] {
    net::FaultInjector& inj = transport.faults();
    for (net::NodeId s = 0; s < n; ++s) {
      inj.recover(s);
      inj.clear_slow(s);
    }
    inj.heal();
    inj.set_message_faults(net::MessageFaults{});
  });

  // Store/COW probes at 7 interior points of the horizon plus one final
  // observation after the run.
  for (int k = 1; k <= 7; ++k) {
    sim.schedule_at(p.horizon * static_cast<double>(k) / 8.0,
                    sim::EventTag::kProbe,
                    [&probe, &probe_failures, &servers] {
                      for (core::ServerProcess& s : servers) {
                        fold(probe_failures, probe.observe(s.id(), s.replica()));
                      }
                    });
  }

  for (ClientDriver& d : drivers) d.step();

  // Gossip (and stray retry timers) keep the queue alive, so run to a cap
  // generous enough that every op finishes long after horizon recovery.
  const sim::Time cap =
      p.horizon + 1000.0 + 60.0 * static_cast<double>(p.ops_per_client);
  sim.run_until(cap);

  for (core::ServerProcess& s : servers) {
    fold(probe_failures, probe.observe(s.id(), s.replica()));
  }

  out.fingerprint = sim.fingerprint();
  out.events_processed = sim.events_processed();
  out.sim_time = sim.now();
  out.ops_checked = history.ops().size();

  spec::BatchOptions bo;
  bo.r4 = p.check_monotone;
  // Contended keys have several writers with independent timestamp
  // counters, so the single-writer rule is out of spec for them.
  bo.single_writer = p.writers_per_key == 1;
  // Key-partitioned check: same verdict as check_batch (every rule is
  // per-key independent), but the first failure is attributed (rule, key).
  // out.rule stays the bare rule id — the shrinker's same-rule acceptance
  // and repro-file headers key on it — while the keyed attribution rides in
  // out.detail.
  const spec::KeyedBatchResult batch =
      spec::check_batch_by_key(history.ops(), bo);
  if (!batch.ok()) {
    out.violation = true;
    out.rule = spec::rule_id(batch.first->rule);
    out.detail = batch.summary();
  } else if (!probe_failures.ok) {
    out.violation = true;
    out.rule = probe_rule(probe_failures.violations.front());
    out.detail = probe_failures.violations.front();
  }
  return out;
}

/// Alg. 1 scenario: APSP on the paper's 5-chain, run to convergence over
/// the profile's cluster shape and fault schedule.
RunOutcome run_alg1_scenario(const ScheduleProfile& p, sim::QueueMode mode,
                             obs::FlightRecorder* recorder) {
  RunOutcome out;
  const apps::Graph g = apps::make_chain(5);
  const apps::ApspOperator op(g);

  quorum::ProbabilisticQuorums quorums(p.num_servers, p.quorum_size);
  // Append full recovery at the horizon (run_alg1 owns the simulator, so
  // the recovery must travel inside the plan).  Message faults persist past
  // the horizon, which is why from_seed caps the loss knobs for alg1.
  net::FaultPlan plan = p.faults;
  const auto n = static_cast<net::NodeId>(p.num_servers);
  for (net::NodeId s = 0; s < n; ++s) {
    plan.recover_at(p.horizon, s);
    plan.clear_slow_at(p.horizon, s);
  }
  plan.heal_at(p.horizon);

  iter::Alg1Options o;
  o.quorums = &quorums;
  o.monotone = p.monotone;
  o.read_repair = p.read_repair;
  o.write_back = p.write_back;
  o.snapshot_reads = p.snapshot_reads;
  // run_alg1 owns its delay model; the profile's spec degrades to the
  // synchronous/asynchronous switch.
  o.synchronous = p.delay.kind == sim::DelaySpec::Kind::kConstant;
  if (p.gossip_interval > 0.0) o.gossip_interval = p.gossip_interval;
  o.seed = p.seed;
  o.round_cap = 5000;
  o.record_history = true;
  o.fault_plan = &plan;
  o.retry = explore_retry();
  o.max_sim_time = p.horizon + 20000.0;
  o.flight_recorder = recorder;
  o.queue_mode = mode;

  const iter::Alg1Result result = iter::run_alg1(op, o);
  out.fingerprint = result.fingerprint;
  out.events_processed = result.events_processed;
  out.sim_time = result.sim_time;
  out.ops_checked = result.history->ops().size();

  spec::BatchOptions bo;
  // The run truncates at convergence (or the time wall) with ops still in
  // flight, so completeness [R1] is not checkable here.
  bo.r1 = false;
  bo.r4 = p.monotone && p.check_monotone;
  const spec::BatchResult batch = spec::check_batch(result.history->ops(), bo);
  if (!batch.ok()) {
    out.violation = true;
    out.rule = spec::rule_id(batch.first_failure()->rule);
    out.detail = batch.summary();
    return out;
  }

  // §6.2: the monotone iteration converges on every schedule.  (Plain
  // registers carry no such guarantee, so non-monotone profiles skip this.)
  if (p.monotone && !result.converged) {
    out.violation = true;
    out.rule = "alg1-convergence";
    std::ostringstream os;
    os << "monotone Alg. 1 run failed to converge (rounds=" << result.rounds
       << ", sim_time=" << result.sim_time << ", round_cap=" << o.round_cap
       << ")";
    out.detail = os.str();
    return out;
  }

  if (result.converged) {
    // Fixed-point/ACO-box probe: the answer the run converged to really is
    // a fixed point of F and lies in every contraction box D(0..3).
    std::vector<iter::Value> x;
    x.reserve(op.num_components());
    for (std::size_t i = 0; i < op.num_components(); ++i) {
      x.push_back(op.fixed_point(i));
    }
    for (std::size_t i = 0; i < op.num_components() && !out.violation; ++i) {
      if (!op.component_equal(i, op.apply(i, x), x[i])) {
        out.violation = true;
        out.rule = "probe:alg1-fixed-point";
        std::ostringstream os;
        os << "[probe:alg1-fixed-point] F(x*) != x* at component " << i;
        out.detail = os.str();
        break;
      }
      for (std::size_t K = 0; K <= 3; ++K) {
        if (op.has_box_oracle() && !op.box_contains(K, i, x[i])) {
          out.violation = true;
          out.rule = "probe:alg1-fixed-point";
          std::ostringstream os;
          os << "[probe:alg1-fixed-point] fixed point escapes box D(" << K
             << ") at component " << i;
          out.detail = os.str();
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace

RunOutcome run_profile(const ScheduleProfile& profile,
                       obs::FlightRecorder* recorder) {
  return run_profile(profile, sim::queue_mode_from_env(), recorder);
}

RunOutcome run_profile(const ScheduleProfile& profile, sim::QueueMode mode,
                       obs::FlightRecorder* recorder) {
  return profile.alg1 ? run_alg1_scenario(profile, mode, recorder)
                      : run_direct(profile, mode, recorder);
}

}  // namespace pqra::explore
