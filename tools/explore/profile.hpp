#pragma once

/// \file profile.hpp
/// Schedule profiles: the fuzzer's unit of search.
///
/// A ScheduleProfile is a complete, value-typed description of one
/// simulated execution — cluster shape, client workload, protocol options,
/// delay model, fault schedule, horizon — such that running it is a pure
/// function of the profile (tools/explore/runner.hpp).  Profiles are
///
///   - generated from a bare seed (from_seed: every dimension drawn from
///     decorrelated util::Rng streams, including 1..6 FaultPlan::mutate
///     edits),
///   - serialized to a line-based text form and parsed back bit-identically
///     (the `--replay` file format, docs/EXPLORATION.md),
///   - compared by cost() during shrinking (smaller = simpler repro).

#include <cstdint>
#include <string>

#include "net/fault_plan.hpp"
#include "sim/delay_model.hpp"
#include "util/rng.hpp"

namespace pqra::explore {

struct ScheduleProfile {
  /// Seed of every RNG stream the run forks (clients, transport, gossip).
  std::uint64_t seed = 1;

  std::size_t num_servers = 5;
  std::size_t quorum_size = 2;
  std::size_t num_clients = 2;
  /// Operations per client in the direct register workload (ignored by the
  /// Alg. 1 scenario, which runs to convergence).
  std::size_t ops_per_client = 20;

  /// Protocol options under test (ClientOptions / Alg1Options).
  bool monotone = true;
  /// Run the [R4] monotone-reads checker.  from_seed keeps this equal to
  /// `monotone` (the rule only holds for monotone clients); regression
  /// hunts and tests/integration/explore_shrink_test set it independently
  /// to demonstrate that a non-monotone schedule is caught and shrunk.
  bool check_monotone = true;
  bool read_repair = false;
  bool write_back = false;
  bool snapshot_reads = false;

  /// Scenario switch: false = direct register workload (each client writes
  /// its own register, reads everyone's); true = Alg. 1 APSP on a 5-chain
  /// run to convergence under the same schedule dimensions.
  bool alg1 = false;

  /// Server anti-entropy period; 0 disables gossip.
  sim::Time gossip_interval = 0.0;

  /// Message-delay distribution.  The Alg. 1 scenario only distinguishes
  /// constant (synchronous) from everything else (asynchronous) because
  /// run_alg1 owns its delay model.
  sim::DelaySpec delay;

  /// Fault events live in [0, horizon]; at the horizon the runner recovers
  /// every server, heals partitions and clears message faults so pending
  /// operations can complete ([R1] stays checkable).
  sim::Time horizon = 120.0;

  net::FaultPlan faults;

  /// Draws a complete profile from \p seed: shape dimensions from one
  /// stream, then 1..6 FaultPlan::mutate edits from another.  alg1 profiles
  /// are forced monotone (plain registers need not converge) and get their
  /// drop/duplicate probabilities capped so convergence stays guaranteed.
  static ScheduleProfile from_seed(std::uint64_t seed);

  /// Line-based text form:
  ///
  ///   pqra-explore-profile v1
  ///   seed 17
  ///   servers 5
  ///   ...
  ///   delay exp:1
  ///   faults crash:1@10;recover:1@50;drop=0.02
  ///
  /// `faults -` encodes the empty plan.  Numbers use util::format_double,
  /// so serialize→parse→serialize is byte-identical.
  std::string serialize() const;

  /// Parses serialize()'s format.  Lines starting with '#' and blank lines
  /// are skipped (repro files carry `#` headers).  Throws std::logic_error
  /// naming the offending line on bad input.
  static ScheduleProfile parse(const std::string& text);

  /// Shrinking order: fault events + workload size + cluster size + message
  /// knobs + option flags + horizon.  The shrinker only accepts candidates
  /// whose cost does not grow.
  std::size_t cost() const;

  friend bool operator==(const ScheduleProfile&,
                         const ScheduleProfile&) = default;
};

}  // namespace pqra::explore
