#pragma once

/// \file profile.hpp
/// Schedule profiles: the fuzzer's unit of search.
///
/// A ScheduleProfile is a complete, value-typed description of one
/// simulated execution — cluster shape, client workload, protocol options,
/// delay model, fault schedule, horizon — such that running it is a pure
/// function of the profile (tools/explore/runner.hpp).  Profiles are
///
///   - generated from a bare seed (from_seed: every dimension drawn from
///     decorrelated util::Rng streams, including 1..6 FaultPlan::mutate
///     edits),
///   - serialized to a line-based text form and parsed back bit-identically
///     (the `--replay` file format, docs/EXPLORATION.md),
///   - compared by cost() during shrinking (smaller = simpler repro).

#include <cstdint>
#include <string>

#include "net/fault_plan.hpp"
#include "sim/delay_model.hpp"
#include "util/rng.hpp"

namespace pqra::explore {

struct ScheduleProfile {
  /// Seed of every RNG stream the run forks (clients, transport, gossip).
  std::uint64_t seed = 1;

  std::size_t num_servers = 5;
  std::size_t quorum_size = 2;
  std::size_t num_clients = 2;
  /// Operations per client in the direct register workload (ignored by the
  /// Alg. 1 scenario, which runs to convergence).
  std::size_t ops_per_client = 20;

  /// Protocol options under test (ClientOptions / Alg1Options).
  bool monotone = true;
  /// Run the [R4] monotone-reads checker.  from_seed keeps this equal to
  /// `monotone` (the rule only holds for monotone clients); regression
  /// hunts and tests/integration/explore_shrink_test set it independently
  /// to demonstrate that a non-monotone schedule is caught and shrunk.
  bool check_monotone = true;
  bool read_repair = false;
  bool write_back = false;
  bool snapshot_reads = false;

  /// Scenario switch: false = direct register workload (each client writes
  /// its own register, reads everyone's); true = Alg. 1 APSP on a 5-chain
  /// run to convergence under the same schedule dimensions.
  bool alg1 = false;

  /// Keyspace shape (docs/SHARDING.md).  The defaults reproduce the
  /// pre-sharding workload draw-for-draw: one key per client, uniform
  /// reads, single writer, full replication.  alg1 profiles keep the
  /// defaults (the iterative scenario owns its register layout).
  ///
  /// Keys per client: client i of c owns keys {i, i+c, i+2c, ...}, so the
  /// run's keyspace has keys_per_client * num_clients keys.
  std::size_t keys_per_client = 1;
  /// Zipfian theta in [0, 1) for read key choice; 0 = uniform (and, being
  /// the legacy value, preserves the legacy draw).  util::Zipfian.
  double key_skew = 0.0;
  /// Writers per key: client i writes the keys owned by clients
  /// i .. i+w-1 (mod c).  w > 1 means contended keys, so the runner drops
  /// the single-writer checker for such profiles.
  std::size_t writers_per_key = 1;
  /// Replica-group size under consistent hashing; 0 = every server
  /// replicates every key (the legacy full-replication layout).  When > 0
  /// the quorum system is sized to the group (quorum_size <= replicas) and
  /// snapshot reads are unavailable (whole-store reads don't shard).
  std::size_t replicas = 0;
  /// Virtual nodes per server on the ring (only read when replicas > 0).
  std::size_t ring_vnodes = 8;
  /// Test-only seeded bug (Replica::set_test_cross_key_probe_bug): replicas
  /// leak key k^1's entry into reads of key k.  Never drawn by from_seed;
  /// the shrink drill (tests/integration/explore_multikey_test.cpp) plants
  /// it to prove the key-partitioned [R2] checker catches cross-key
  /// contamination and shrinks it to a minimal keyspace.
  bool bug_cross_key = false;

  /// Durability (docs/DURABILITY.md): every server runs a MemDisk-backed
  /// DurableStore, crashes drop volatile storage, recoveries replay the
  /// durable prefix and the crash-replay-compare oracle cross-checks every
  /// recovery.  Never drawn by from_seed (existing seeds keep their
  /// byte-identical schedules); enabled by `--force-durable` and explicit
  /// profiles.  alg1 profiles stay non-durable (the iterative scenario owns
  /// its replica layout).
  bool durable = false;
  /// WAL appends between automatic checkpoints; 0 = never checkpoint.
  /// Only read when durable.
  std::size_t snapshot_every = 64;
  /// Test-only seeded bug (DurableStore::set_test_skip_crc_bug): recovery
  /// replays the WAL without CRC checking, so torn garbage surfaces as
  /// durable state.  Never drawn by from_seed; the durability drill
  /// (tests/integration/explore_durability_test.cpp) plants it to prove the
  /// crash-replay-compare oracle catches it and shrinks the repro.
  bool bug_skip_crc = false;

  /// Server anti-entropy period; 0 disables gossip.
  sim::Time gossip_interval = 0.0;

  /// Message-delay distribution.  The Alg. 1 scenario only distinguishes
  /// constant (synchronous) from everything else (asynchronous) because
  /// run_alg1 owns its delay model.
  sim::DelaySpec delay;

  /// Fault events live in [0, horizon]; at the horizon the runner recovers
  /// every server, heals partitions and clears message faults so pending
  /// operations can complete ([R1] stays checkable).
  sim::Time horizon = 120.0;

  net::FaultPlan faults;

  /// Draws a complete profile from \p seed: shape dimensions from one
  /// stream, then 1..6 FaultPlan::mutate edits from another.  alg1 profiles
  /// are forced monotone (plain registers need not converge) and get their
  /// drop/duplicate probabilities capped so convergence stays guaranteed.
  static ScheduleProfile from_seed(std::uint64_t seed);

  /// Line-based text form:
  ///
  ///   pqra-explore-profile v1
  ///   seed 17
  ///   servers 5
  ///   ...
  ///   delay exp:1
  ///   faults crash:1@10;recover:1@50;drop=0.02
  ///
  /// `faults -` encodes the empty plan.  Numbers use util::format_double,
  /// so serialize→parse→serialize is byte-identical.
  std::string serialize() const;

  /// Parses serialize()'s format.  Lines starting with '#' and blank lines
  /// are skipped (repro files carry `#` headers).  Throws std::logic_error
  /// naming the offending line on bad input.
  static ScheduleProfile parse(const std::string& text);

  /// Shrinking order: fault events + workload size + cluster size + message
  /// knobs + option flags + horizon.  The shrinker only accepts candidates
  /// whose cost does not grow.
  std::size_t cost() const;

  /// Total keys in the direct workload's keyspace.
  std::size_t num_keys() const { return keys_per_client * num_clients; }

  /// One random edit of the keyspace knobs (the keyspace analogue of
  /// FaultPlan::mutate, and the hook regression hunts use to push a profile
  /// into sharded shapes).  Keeps the profile valid: replicas stays within
  /// [quorum_size, num_servers] and snapshot reads are dropped when a ring
  /// appears.  bug_cross_key is not a schedule dimension and is never
  /// touched.
  void mutate_keyspace(util::Rng& rng);

  friend bool operator==(const ScheduleProfile&,
                         const ScheduleProfile&) = default;
};

}  // namespace pqra::explore
