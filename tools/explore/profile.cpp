#include "explore/profile.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace pqra::explore {

namespace {

using DelayKind = sim::DelaySpec::Kind;

[[noreturn]] void bad_line(const std::string& line, const char* why) {
  throw std::logic_error("bad profile line (" + std::string(why) + "): " +
                         line);
}

std::uint64_t parse_u64(const std::string& value, const std::string& line) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') bad_line(line, "expected integer");
  return v;
}

double parse_f64(const std::string& value, const std::string& line) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') bad_line(line, "expected number");
  return v;
}

bool parse_bool(const std::string& value, const std::string& line) {
  if (value == "0") return false;
  if (value == "1") return true;
  bad_line(line, "expected 0 or 1");
}

}  // namespace

ScheduleProfile ScheduleProfile::from_seed(std::uint64_t seed) {
  ScheduleProfile p;
  p.seed = seed;
  util::Rng root(seed);

  // Shape stream: every structural dimension in a fixed draw order, so the
  // profile is a pure function of the seed.
  util::Rng shape = root.fork(1);
  p.num_servers = 3 + static_cast<std::size_t>(shape.below(28));  // [3, 30]
  p.quorum_size = 1 + static_cast<std::size_t>(shape.below(
                          std::min<std::uint64_t>(p.num_servers, 6)));
  p.num_clients = 1 + static_cast<std::size_t>(shape.below(4));
  p.ops_per_client = 10 + static_cast<std::size_t>(shape.below(31));
  p.alg1 = shape.bernoulli(0.15);
  // Plain (non-monotone) probabilistic registers give Alg. 1 no convergence
  // guarantee, so the iterative scenario always runs monotone clients.
  p.monotone = shape.bernoulli(0.6) || p.alg1;
  p.check_monotone = p.monotone;
  p.read_repair = shape.bernoulli(0.25);
  p.write_back = shape.bernoulli(0.15);
  // Snapshot reads and atomic write-back are mutually exclusive in the
  // client (write-back of a whole-store read is undefined).
  p.snapshot_reads = !p.write_back && shape.bernoulli(0.2);
  p.gossip_interval =
      shape.bernoulli(0.3) ? 5.0 + 20.0 * shape.uniform01() : 0.0;
  switch (shape.below(4)) {
    case 0:
      p.delay = {DelayKind::kConstant, 1.0};
      break;
    case 1:
      p.delay = {DelayKind::kExponential, 1.0};
      break;
    case 2:
      p.delay = {DelayKind::kUniform, 0.5, 0.5 + 3.0 * shape.uniform01()};
      break;
    default:
      p.delay = {DelayKind::kLognormal, 0.1, 0.0,
                 0.5 + 0.5 * shape.uniform01()};
      break;
  }
  p.horizon = 60.0 + 120.0 * shape.uniform01();

  // Keyspace shape, appended to the end of the stream so every pre-sharding
  // dimension keeps its draw position (old seeds reproduce their old
  // profiles except for these trailing knobs).  alg1 short-circuits before
  // the bernoulli: iterative profiles consume no keyspace draws at all.
  if (!p.alg1 && shape.bernoulli(0.35)) {
    p.keys_per_client = 2 + static_cast<std::size_t>(shape.below(15));
    p.key_skew =
        shape.bernoulli(0.5) ? 0.6 + 0.39 * shape.uniform01() : 0.0;
    if (shape.bernoulli(0.2) && p.num_clients >= 2) {
      p.writers_per_key = 2;
    }
    if (shape.bernoulli(0.6)) {
      p.replicas = p.quorum_size + static_cast<std::size_t>(shape.below(
                       p.num_servers - p.quorum_size + 1));
      p.ring_vnodes = 4 + static_cast<std::size_t>(shape.below(13));
      // Per-key replica groups have no whole-store read: a snapshot would
      // have to contact every group (quorum_register_client forbids it).
      p.snapshot_reads = false;
    }
  }

  // Fault stream: schedule churn through the same mutation operator the
  // shrinker understands how to take apart.  Multi-key profiles expose the
  // keyspace to the operator so it can draw key-addressed targets.
  util::Rng fault_rng = root.fork(2);
  const std::size_t edits = 1 + static_cast<std::size_t>(fault_rng.below(6));
  const std::size_t fault_keys = p.keys_per_client > 1 ? p.num_keys() : 0;
  for (std::size_t i = 0; i < edits; ++i) {
    p.faults.mutate(p.num_servers, p.horizon, fault_rng, fault_keys);
  }
  if (p.alg1) {
    // Heavy message loss on top of crash churn can push convergence past any
    // reasonable round cap; the iterative scenario tests ordering and
    // staleness, not raw packet loss, so cap the loss knobs.
    net::MessageFaults mf = p.faults.message_faults();
    mf.drop_probability = std::min(mf.drop_probability, 0.05);
    mf.duplicate_probability = std::min(mf.duplicate_probability, 0.1);
    mf.reorder_probability = std::min(mf.reorder_probability, 0.1);
    p.faults = net::FaultPlan::from_parts(p.faults.events(), mf);
  }
  return p;
}

std::string ScheduleProfile::serialize() const {
  std::ostringstream os;
  os << "pqra-explore-profile v1\n";
  os << "seed " << seed << "\n";
  os << "servers " << num_servers << "\n";
  os << "quorum " << quorum_size << "\n";
  os << "clients " << num_clients << "\n";
  os << "ops " << ops_per_client << "\n";
  os << "monotone " << (monotone ? 1 : 0) << "\n";
  os << "check-monotone " << (check_monotone ? 1 : 0) << "\n";
  os << "read-repair " << (read_repair ? 1 : 0) << "\n";
  os << "write-back " << (write_back ? 1 : 0) << "\n";
  os << "snapshot-reads " << (snapshot_reads ? 1 : 0) << "\n";
  os << "alg1 " << (alg1 ? 1 : 0) << "\n";
  os << "keys " << keys_per_client << "\n";
  os << "key-skew " << util::format_double(key_skew) << "\n";
  os << "writers-per-key " << writers_per_key << "\n";
  os << "replicas " << replicas << "\n";
  os << "vnodes " << ring_vnodes << "\n";
  os << "bug-cross-key " << (bug_cross_key ? 1 : 0) << "\n";
  os << "durable " << (durable ? 1 : 0) << "\n";
  os << "snapshot-every " << snapshot_every << "\n";
  os << "bug-skip-crc " << (bug_skip_crc ? 1 : 0) << "\n";
  os << "gossip " << util::format_double(gossip_interval) << "\n";
  os << "delay " << delay.serialize() << "\n";
  os << "horizon " << util::format_double(horizon) << "\n";
  os << "faults " << (faults.empty() ? "-" : faults.serialize()) << "\n";
  return os.str();
}

ScheduleProfile ScheduleProfile::parse(const std::string& text) {
  ScheduleProfile p;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != "pqra-explore-profile v1") {
        bad_line(line, "expected 'pqra-explore-profile v1' header");
      }
      saw_header = true;
      continue;
    }
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) bad_line(line, "expected 'key value'");
    const std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    if (key == "seed") {
      p.seed = parse_u64(value, line);
    } else if (key == "servers") {
      p.num_servers = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "quorum") {
      p.quorum_size = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "clients") {
      p.num_clients = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "ops") {
      p.ops_per_client = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "monotone") {
      p.monotone = parse_bool(value, line);
    } else if (key == "check-monotone") {
      p.check_monotone = parse_bool(value, line);
    } else if (key == "read-repair") {
      p.read_repair = parse_bool(value, line);
    } else if (key == "write-back") {
      p.write_back = parse_bool(value, line);
    } else if (key == "snapshot-reads") {
      p.snapshot_reads = parse_bool(value, line);
    } else if (key == "alg1") {
      p.alg1 = parse_bool(value, line);
    } else if (key == "keys") {
      // Keyspace keys default when absent so pre-sharding replay files
      // still parse (they describe single-key runs, which the defaults are).
      p.keys_per_client = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "key-skew") {
      p.key_skew = parse_f64(value, line);
    } else if (key == "writers-per-key") {
      p.writers_per_key = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "replicas") {
      p.replicas = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "vnodes") {
      p.ring_vnodes = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "bug-cross-key") {
      p.bug_cross_key = parse_bool(value, line);
    } else if (key == "durable") {
      // Durability keys default when absent so pre-durability replay files
      // still parse (they describe non-durable runs, which the defaults are).
      p.durable = parse_bool(value, line);
    } else if (key == "snapshot-every") {
      p.snapshot_every = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "bug-skip-crc") {
      p.bug_skip_crc = parse_bool(value, line);
    } else if (key == "gossip") {
      p.gossip_interval = parse_f64(value, line);
    } else if (key == "delay") {
      p.delay = sim::DelaySpec::parse(value);
    } else if (key == "horizon") {
      p.horizon = parse_f64(value, line);
    } else if (key == "faults") {
      p.faults = value == "-" ? net::FaultPlan{} : net::FaultPlan::parse(value);
    } else {
      bad_line(line, "unknown key");
    }
  }
  if (!saw_header) {
    throw std::logic_error("not a pqra-explore profile: missing header");
  }
  if (p.num_servers == 0 || p.num_clients == 0 || p.quorum_size == 0 ||
      p.quorum_size > p.num_servers || p.horizon <= 0.0 ||
      (p.snapshot_reads && p.write_back)) {
    throw std::logic_error("profile out of range: " + p.serialize());
  }
  if (p.keys_per_client == 0 || p.ring_vnodes == 0 ||
      p.writers_per_key == 0 || p.writers_per_key > p.num_clients ||
      p.key_skew < 0.0 || p.key_skew >= 1.0 ||
      (p.replicas != 0 &&
       (p.replicas < p.quorum_size || p.replicas > p.num_servers)) ||
      (p.replicas != 0 && p.snapshot_reads) ||
      (p.alg1 && (p.keys_per_client != 1 || p.writers_per_key != 1 ||
                  p.key_skew != 0.0 || p.replicas != 0 || p.bug_cross_key))) {
    throw std::logic_error("profile keyspace out of range: " + p.serialize());
  }
  if ((p.bug_skip_crc && !p.durable) || (p.alg1 && p.durable)) {
    throw std::logic_error("profile durability out of range: " +
                           p.serialize());
  }
  return p;
}

std::size_t ScheduleProfile::cost() const {
  const net::MessageFaults& mf = faults.message_faults();
  const std::size_t knobs =
      static_cast<std::size_t>(mf.drop_probability > 0.0) +
      static_cast<std::size_t>(mf.duplicate_probability > 0.0) +
      static_cast<std::size_t>(mf.extra_delay > 0.0) +
      static_cast<std::size_t>(mf.reorder_probability > 0.0);
  const std::size_t flags =
      static_cast<std::size_t>(gossip_interval > 0.0) +
      static_cast<std::size_t>(read_repair) +
      static_cast<std::size_t>(write_back) +
      static_cast<std::size_t>(snapshot_reads);
  // Keyspace terms are zero at the single-key defaults, so legacy costs are
  // unchanged; extra keys weigh enough that halving the keyspace beats
  // trimming a flag.
  const std::size_t key_knobs =
      static_cast<std::size_t>(key_skew > 0.0) +
      static_cast<std::size_t>(writers_per_key > 1) +
      static_cast<std::size_t>(replicas > 0);
  // Fault events dominate (removing one always wins), then workload size,
  // then cluster shape and the horizon so every shrinking pass can lower it.
  // Durability costs enough that a repro which survives the durable->plain
  // flip sheds it, but not so much the shrinker prefers gutting the
  // workload first.  Zero at the non-durable default: legacy costs hold.
  const std::size_t durable_cost =
      durable ? 2 + static_cast<std::size_t>(snapshot_every > 0) : 0;
  return 16 * faults.events().size() + num_clients * ops_per_client +
         num_servers + quorum_size + 4 * knobs + 2 * flags +
         8 * (keys_per_client - 1) + 2 * key_knobs + durable_cost +
         static_cast<std::size_t>(horizon);
}

void ScheduleProfile::mutate_keyspace(util::Rng& rng) {
  switch (rng.below(5)) {
    case 0:  // resize the per-client keyspace, [1, 16]
      keys_per_client = 1 + static_cast<std::size_t>(rng.below(16));
      break;
    case 1:  // toggle / redraw read skew
      key_skew = rng.bernoulli(0.5) ? 0.6 + 0.39 * rng.uniform01() : 0.0;
      break;
    case 2:  // contended keys (capped by the client count)
      writers_per_key =
          1 + static_cast<std::size_t>(rng.below(num_clients));
      break;
    case 3:  // shard onto a ring, or back to full replication
      if (rng.bernoulli(0.5)) {
        replicas = quorum_size + static_cast<std::size_t>(rng.below(
                       num_servers - quorum_size + 1));
        snapshot_reads = false;
      } else {
        replicas = 0;
      }
      break;
    default:  // re-balance the ring
      ring_vnodes = 1 + static_cast<std::size_t>(rng.below(16));
      break;
  }
}

}  // namespace pqra::explore
