#include "explore/shrink.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace pqra::explore {

namespace {

using FaultEvent = net::FaultPlan::Event;

void with_faults(std::vector<ScheduleProfile>& out, const ScheduleProfile& cur,
                 std::vector<FaultEvent> events,
                 const net::MessageFaults& knobs) {
  ScheduleProfile c = cur;
  c.faults = net::FaultPlan::from_parts(std::move(events), knobs);
  out.push_back(std::move(c));
}

/// All one-step reductions of \p cur, most aggressive first.  Every pass
/// strictly removes or decreases something (identity candidates are
/// filtered by the caller), so repeated acceptance terminates.
std::vector<ScheduleProfile> candidates(const ScheduleProfile& cur) {
  std::vector<ScheduleProfile> out;
  const std::vector<FaultEvent>& events = cur.faults.events();
  const net::MessageFaults knobs = cur.faults.message_faults();
  const std::size_t ne = events.size();

  // Fault-event chunk removal, ddmin-style: drop aligned chunks, halving
  // the chunk size (the whole plan first, single events last).
  for (std::size_t chunk = ne; chunk >= 1; chunk /= 2) {
    for (std::size_t start = 0; start < ne; start += chunk) {
      std::vector<FaultEvent> kept;
      kept.reserve(ne - std::min(chunk, ne - start));
      for (std::size_t i = 0; i < ne; ++i) {
        if (i < start || i >= start + chunk) kept.push_back(events[i]);
      }
      with_faults(out, cur, std::move(kept), knobs);
    }
    if (chunk == 1) break;
  }

  // Zero the message-fault knobs: all at once, then one at a time.
  if (knobs.any()) {
    with_faults(out, cur, events, net::MessageFaults{});
  }
  if (knobs.drop_probability > 0.0) {
    net::MessageFaults m = knobs;
    m.drop_probability = 0.0;
    with_faults(out, cur, events, m);
  }
  if (knobs.duplicate_probability > 0.0) {
    net::MessageFaults m = knobs;
    m.duplicate_probability = 0.0;
    with_faults(out, cur, events, m);
  }
  if (knobs.extra_delay > 0.0) {
    net::MessageFaults m = knobs;
    m.extra_delay = 0.0;
    with_faults(out, cur, events, m);
  }
  if (knobs.reorder_probability > 0.0) {
    net::MessageFaults m = knobs;
    m.reorder_probability = 0.0;
    m.reorder_delay_max = 0.0;
    with_faults(out, cur, events, m);
  }

  // Workload: halve the op count (floor 2 keeps at least a write+read), then
  // a single-op nibble; drop one client.
  {
    ScheduleProfile c = cur;
    c.ops_per_client = std::max<std::size_t>(2, cur.ops_per_client / 2);
    out.push_back(std::move(c));
  }
  if (cur.ops_per_client > 2) {
    ScheduleProfile c = cur;
    c.ops_per_client = cur.ops_per_client - 1;
    out.push_back(std::move(c));
  }
  if (cur.num_clients > 1) {
    ScheduleProfile c = cur;
    c.num_clients = cur.num_clients - 1;
    // Contention can't exceed the client count (profile invariant).
    c.writers_per_key = std::min(c.writers_per_key, c.num_clients);
    out.push_back(std::move(c));
  }

  // Keyspace reductions (docs/SHARDING.md): shrink toward the single-key,
  // uniform, single-writer, fully-replicated legacy shape.
  if (cur.keys_per_client > 1) {
    ScheduleProfile c = cur;
    c.keys_per_client = std::max<std::size_t>(1, cur.keys_per_client / 2);
    out.push_back(std::move(c));
  }
  if (cur.keys_per_client > 1) {
    ScheduleProfile c = cur;
    c.keys_per_client = cur.keys_per_client - 1;
    out.push_back(std::move(c));
  }
  if (cur.key_skew > 0.0) {
    ScheduleProfile c = cur;
    c.key_skew = 0.0;
    out.push_back(std::move(c));
  }
  if (cur.writers_per_key > 1) {
    ScheduleProfile c = cur;
    c.writers_per_key = 1;
    out.push_back(std::move(c));
  }
  if (cur.replicas > 0) {
    ScheduleProfile c = cur;
    c.replicas = 0;  // back to full replication
    out.push_back(std::move(c));
  }
  if (cur.replicas > cur.quorum_size) {
    ScheduleProfile c = cur;
    c.replicas = cur.replicas - 1;
    out.push_back(std::move(c));
  }

  // Halve the horizon (floor 10), dropping fault events past the new end.
  if (cur.horizon > 10.0) {
    ScheduleProfile c = cur;
    c.horizon = std::max(10.0, cur.horizon / 2.0);
    std::vector<FaultEvent> kept;
    for (const FaultEvent& e : events) {
      if (e.at <= c.horizon) kept.push_back(e);
    }
    c.faults = net::FaultPlan::from_parts(std::move(kept), knobs);
    out.push_back(std::move(c));
  }

  // Durability reductions (docs/DURABILITY.md): drop the whole durable
  // layer — unless the planted CRC-skip bug needs it to fire — and try
  // disabling automatic checkpoints so the repro replays one plain log.
  if (cur.durable && !cur.bug_skip_crc) {
    ScheduleProfile c = cur;
    c.durable = false;
    out.push_back(std::move(c));
  }
  if (cur.durable && cur.snapshot_every > 0) {
    ScheduleProfile c = cur;
    c.snapshot_every = 0;
    out.push_back(std::move(c));
  }

  // Clear protocol extensions one at a time.
  if (cur.gossip_interval > 0.0) {
    ScheduleProfile c = cur;
    c.gossip_interval = 0.0;
    out.push_back(std::move(c));
  }
  if (cur.read_repair) {
    ScheduleProfile c = cur;
    c.read_repair = false;
    out.push_back(std::move(c));
  }
  if (cur.write_back) {
    ScheduleProfile c = cur;
    c.write_back = false;
    out.push_back(std::move(c));
  }
  if (cur.snapshot_reads) {
    ScheduleProfile c = cur;
    c.snapshot_reads = false;
    out.push_back(std::move(c));
  }

  // Simplify the schedule dimensions that stay: smaller quorum, plainest
  // delay model.  (num_servers is left alone — node ids thread through the
  // fault plan and the quorum system, so shrinking it would change the
  // meaning of everything else.)
  if (cur.quorum_size > 1) {
    ScheduleProfile c = cur;
    c.quorum_size = cur.quorum_size - 1;
    out.push_back(std::move(c));
  }
  if (cur.delay.kind != sim::DelaySpec::Kind::kConstant) {
    ScheduleProfile c = cur;
    c.delay = sim::DelaySpec{};  // constant:1
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const ScheduleProfile& original,
                    const RunOutcome& original_outcome, std::size_t max_runs) {
  ShrinkResult r;
  r.profile = original;
  r.outcome = original_outcome;
  bool progress = true;
  while (progress && r.stats.attempts < max_runs) {
    progress = false;
    for (ScheduleProfile& cand : candidates(r.profile)) {
      if (cand == r.profile) continue;
      if (cand.cost() > r.profile.cost()) continue;
      if (r.stats.attempts >= max_runs) break;
      ++r.stats.attempts;
      RunOutcome out = run_profile(cand);
      if (out.violation && out.rule == r.outcome.rule) {
        r.profile = std::move(cand);
        r.outcome = std::move(out);
        ++r.stats.accepted;
        progress = true;
        break;  // restart candidate generation from the smaller profile
      }
    }
  }
  return r;
}

}  // namespace pqra::explore
