#pragma once

/// \file runner.hpp
/// Executes one ScheduleProfile and judges the result.
///
/// run_profile is a pure function of the profile: it builds a private
/// Simulator, transport, servers and clients, installs the profile's fault
/// plan, drives the workload, and pipes the recorded history through the
/// core/spec batch checkers plus the runtime invariant probes
/// (core/spec/probes.hpp).  Two calls with the same profile produce the
/// same RunOutcome, fingerprint included — the property `--replay` asserts.
///
/// Two scenarios share the profile vocabulary (ScheduleProfile::alg1):
///
///   - direct register workload: each client is the single writer of its
///     own register and reads everyone's, under retries, faults and the
///     optional protocol extensions; checked against [R1]/[R2]/
///     single-writer (+[R4] when check_monotone) and the store/COW probes;
///   - Alg. 1: APSP on the paper's 5-chain run to convergence over the same
///     cluster shape; checked against [R2]/single-writer (+[R4]),
///     convergence of the monotone iteration, and the fixed-point/ACO-box
///     probe ("probe:alg1-fixed-point").

#include <cstdint>
#include <string>

#include "explore/profile.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/calendar_queue.hpp"

namespace pqra::explore {

/// What one execution produced.  `rule` is a stable id — a batch-checker
/// rule ("R1", "R2", "R4", "single-writer"), a probe id ("probe:store-ts",
/// "probe:value-cow", "probe:alg1-fixed-point") or "alg1-convergence" — and
/// is what the shrinker preserves while reducing a violating profile.
struct RunOutcome {
  bool violation = false;
  std::string rule;
  std::string detail;
  /// Schedule identity (Simulator::fingerprint / events_processed): equal
  /// pairs mean the exact same event schedule executed.
  std::uint64_t fingerprint = 0;
  std::uint64_t events_processed = 0;
  /// Operations the spec checkers saw.
  std::size_t ops_checked = 0;
  sim::Time sim_time = 0.0;
};

/// \p recorder (optional) is bound to the run's transport: every
/// send/deliver/drop lands in the ring, so a shrunken repro can ship with
/// the message-level tail of its failing execution (`--flightrec`).  The
/// recorder only observes — outcomes and fingerprints are unchanged.
RunOutcome run_profile(const ScheduleProfile& profile,
                       obs::FlightRecorder* recorder = nullptr);

/// Same, but pins the event-queue implementation instead of reading
/// PQRA_QUEUE: `--queue-diff` runs every profile once per QueueMode and
/// asserts the fingerprints agree (the calendar queue's equivalence bar,
/// docs/PERFORMANCE.md).
RunOutcome run_profile(const ScheduleProfile& profile, sim::QueueMode mode,
                       obs::FlightRecorder* recorder = nullptr);

}  // namespace pqra::explore
