#pragma once

/// \file shrink.hpp
/// Delta-debugging shrinker for violating schedule profiles.
///
/// Given a profile whose run violates some rule, shrink() greedily applies
/// reduction passes — remove fault-event chunks (ddmin-style, halving chunk
/// sizes), zero message-fault knobs, halve the op count, drop clients,
/// halve the horizon, clear protocol extensions, shrink the quorum — and
/// re-runs each candidate, accepting it only when it still violates the
/// SAME rule and its cost() did not grow.  The loop restarts from every
/// accepted candidate and stops when a full sweep accepts nothing (or the
/// run budget is exhausted), yielding a locally-minimal repro.
///
/// Deterministic: candidate order is fixed and every candidate run is a
/// pure function of its profile, so shrinking the same violation twice
/// produces the same minimal profile.

#include <cstddef>

#include "explore/profile.hpp"
#include "explore/runner.hpp"

namespace pqra::explore {

struct ShrinkStats {
  std::size_t attempts = 0;  ///< candidate runs executed
  std::size_t accepted = 0;  ///< candidates that kept the violation
};

struct ShrinkResult {
  ScheduleProfile profile;  ///< locally-minimal violating profile
  RunOutcome outcome;       ///< its (still-violating) outcome
  ShrinkStats stats;
};

/// \p original must violate (\p original_outcome.violation); \p max_runs
/// bounds the total candidate executions.
ShrinkResult shrink(const ScheduleProfile& original,
                    const RunOutcome& original_outcome,
                    std::size_t max_runs = 500);

}  // namespace pqra::explore
