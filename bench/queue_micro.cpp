/// \file queue_micro.cpp
/// Microbenchmark of the pending-event structure behind the simulator
/// (sim/calendar_queue.hpp): calendar queue vs the original binary heap,
/// measured in isolation with the classic "hold" model — prefill N events,
/// then repeatedly pop the minimum and push a replacement at now + delay.
///
/// Sweeps pending-set sizes 10^3..10^7 under three delay mixes:
///   uniform     delays ~ U[0, 1)            (the calendar's best case)
///   two-point   0.1 with p=.9, 50 with p=.1 (bimodal — day-width stress)
///   heavy-tail  exponential(1) cubed        (rare far-future events
///                                            exercising the overflow list)
///
/// Prints hold-operation throughput per (mode, mix, size) cell and the
/// standard stderr timing line for bench/run_benches.sh.

#include <algorithm>
#include <cstdio>
#include <utility>

#include "bench_common.hpp"
#include "sim/calendar_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace pqra;

enum class Mix { kUniform, kTwoPoint, kHeavyTail };

double sample_delay(Mix mix, util::Rng& rng) {
  switch (mix) {
    case Mix::kUniform:
      return rng.uniform01();
    case Mix::kTwoPoint:
      return rng.uniform01() < 0.9 ? 0.1 : 50.0;
    case Mix::kHeavyTail: {
      double e = rng.exponential(1.0);
      return e * e * e;
    }
  }
  return 0.0;
}

struct CellOut {
  double hold_mops = 0.0;       // hold ops (pop+push) per second, millions
  std::uint64_t resizes = 0;    // calendar reorganizations during the cell
  std::uint64_t ops = 0;        // total queue ops performed
};

CellOut run_cell(sim::QueueMode mode, Mix mix, std::size_t pending,
                 std::size_t holds, std::uint64_t seed) {
  sim::EventQueue queue(mode);
  sim::EventArena arena;
  util::Rng rng(seed);
  std::uint64_t seq = 0;
  // Prefill: `pending` events spread by the mix.
  for (std::size_t i = 0; i < pending; ++i) {
    queue.push(sample_delay(mix, rng), seq++, sim::EventTag::kGeneric,
               sim::EventFn([] {}, arena));
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < holds; ++i) {
    sim::EventQueue::Item item = queue.pop();
    queue.push(item.t + sample_delay(mix, rng), seq++,
               sim::EventTag::kGeneric, std::move(item.fn));
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  CellOut out;
  out.hold_mops =
      wall > 0.0 ? static_cast<double>(holds) / wall / 1e6 : 0.0;
  out.resizes = queue.bucket_resizes();
  out.ops = pending + 2 * holds;
  return out;
}

const char* mix_name(Mix mix) {
  switch (mix) {
    case Mix::kUniform:
      return "uniform";
    case Mix::kTwoPoint:
      return "two-point";
    case Mix::kHeavyTail:
      return "heavy-tail";
  }
  return "?";
}

}  // namespace

int main() {
  const std::uint64_t seed = bench::env_seed();
  bench::Timing timing;

  std::vector<std::size_t> sizes{1000, 10000, 100000, 1000000, 10000000};
  if (bench::env_fast()) sizes.resize(3);

  std::printf("event-queue hold throughput (pop+push at steady pending size; "
              "Mops/s = million hold ops per second)\n\n");
  bench::Table table({"mix", "pending", "heap_Mops", "cal_Mops", "speedup",
                      "cal_resizes"},
                     13);
  table.print_header();
  for (Mix mix : {Mix::kUniform, Mix::kTwoPoint, Mix::kHeavyTail}) {
    for (std::size_t pending : sizes) {
      // Enough holds to dominate cache-warming, capped to keep the big
      // pending sizes affordable.
      const std::size_t holds =
          std::min<std::size_t>(2 * pending, 2000000);
      CellOut heap =
          run_cell(sim::QueueMode::kHeap, mix, pending, holds, seed);
      CellOut cal =
          run_cell(sim::QueueMode::kCalendar, mix, pending, holds, seed);
      timing.add(heap.ops + cal.ops, 2);
      table.cell(mix_name(mix));
      table.cell(pending);
      table.cell(heap.hold_mops, 2);
      table.cell(cal.hold_mops, 2);
      table.cell(cal.hold_mops / heap.hold_mops, 2);
      table.cell(cal.resizes);
      table.end_row();
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("the heap's pop costs O(log n) comparisons at every size; the "
              "calendar's stays O(1) while its width estimate matches the "
              "mix — the two-point and heavy-tail rows show the retune and "
              "overflow machinery paying for itself.\n");
  timing.emit(1);
  return 0;
}
