/// \file convergence_apps.cpp
/// Extension/ablation: the paper's framework promises that *any* ACO runs
/// correctly over random registers (§5).  This harness sweeps quorum sizes
/// for the three other applications the introduction names — transitive
/// closure, constraint satisfaction (arc consistency) and linear equations
/// (asynchronous Jacobi) — and reports rounds to convergence under monotone
/// registers, mirroring Figure 2's shape for each.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "apps/csp.hpp"
#include "apps/graph.hpp"
#include "apps/linear.hpp"
#include "apps/transitive_closure.hpp"
#include "bench_common.hpp"
#include "iter/alg1_des.hpp"
#include "quorum/probabilistic.hpp"
#include "sim/parallel_runner.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"

namespace {

using namespace pqra;

void sweep(sim::ParallelRunner& pool, bench::Timing& timing,
           const iter::AcoOperator& op, std::size_t n, std::size_t runs,
           std::uint64_t seed) {
  std::printf("%s  (m = %zu components, n = %zu replicas, %zu runs)\n",
              op.name().c_str(), op.num_components(), n, runs);
  bench::Table table({"k", "rounds", "pseudocycles", "msgs/round"}, 14);
  table.print_header();
  std::vector<std::size_t> ks{1, 2, 3, 4, 6, n / 2 + 1};
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  for (std::size_t k : ks) {
    if (k > n) continue;
    quorum::ProbabilisticQuorums qs(n, k);
    // Independent replications, folded back in run order (PQRA_JOBS moves
    // wall-clock only, never the table).
    std::vector<iter::Alg1Result> rs =
        pool.map<iter::Alg1Result>(runs, [&](std::size_t run) {
          iter::Alg1Options options;
          options.quorums = &qs;
          options.monotone = true;
          options.synchronous = true;
          options.seed = seed + run * 31 + k;
          options.round_cap = 20000;
          return iter::run_alg1(op, options);
        });
    util::OnlineStats rounds, pcs, mpr;
    for (const iter::Alg1Result& r : rs) {
      timing.add(r.events_processed);
      if (!r.converged) continue;
      rounds.add(static_cast<double>(r.rounds));
      pcs.add(static_cast<double>(r.pseudocycles));
      mpr.add(static_cast<double>(r.messages.total) /
              static_cast<double>(r.rounds));
    }
    table.cell(k);
    table.cell(rounds.mean(), 2);
    table.cell(pcs.mean(), 2);
    table.cell(mpr.mean(), 0);
    table.end_row();
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const std::size_t runs = bench::env_runs(5);
  const std::uint64_t seed = bench::env_seed();
  const std::size_t scale = bench::env_fast() ? 8 : 16;
  util::Rng gen(seed);
  sim::ParallelRunner pool(bench::env_jobs());
  bench::Timing timing;

  std::printf("ACO applications over monotone probabilistic quorum "
              "registers — rounds vs quorum size\n\n");

  apps::Graph tc_graph = apps::make_chain(scale);
  apps::TransitiveClosureOperator tc(tc_graph);
  sweep(pool, timing, tc, scale, runs, seed);

  // Ordering chain: arc consistency must propagate pruning across the whole
  // variable chain, so convergence depth scales with m.
  apps::Csp csp = apps::make_ordering_csp(scale, scale);
  apps::ArcConsistencyOperator ac(std::move(csp));
  sweep(pool, timing, ac, scale, runs, seed + 1000);

  apps::LinearSystem sys = apps::make_dominant_system(scale, 0.7, gen);
  apps::JacobiOperator jacobi(std::move(sys), 1e-6);
  sweep(pool, timing, jacobi, scale, runs, seed + 2000);

  std::printf("same story as Figure 2 in all three domains: small quorums "
              "converge with modest extra rounds, and by k ~ 4 the monotone "
              "register matches strict behaviour.\n");
  timing.emit(pool.jobs());
  return 0;
}
