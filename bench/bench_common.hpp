#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the experiment harnesses: environment knobs and
/// fixed-width table printing.
///
/// Knobs (all optional):
///   PQRA_RUNS=<n>   override the number of repetitions per configuration
///   PQRA_FAST=1     shrink sweeps for a quick smoke run
///   PQRA_SEED=<n>   master seed (default 1)
///   PQRA_JOBS=<n>   worker threads for replication loops (0 / unset =
///                   hardware concurrency).  Output is byte-identical for
///                   any value — see docs/PERFORMANCE.md.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace pqra::bench {

inline std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<std::size_t>(parsed);
}

inline bool env_fast() { return env_size_t("PQRA_FAST", 0) != 0; }

inline std::uint64_t env_seed() {
  return static_cast<std::uint64_t>(env_size_t("PQRA_SEED", 1));
}

/// Number of repetitions; the paper uses 7 runs per configuration (§7).
inline std::size_t env_runs(std::size_t fallback = 7) {
  return env_size_t("PQRA_RUNS", env_fast() ? 2 : fallback);
}

/// Worker threads for the replication loops (sim::ParallelRunner); 0 means
/// hardware concurrency.
inline std::size_t env_jobs() { return env_size_t("PQRA_JOBS", 0); }

/// Fixed-width table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 12)
      : headers_(std::move(headers)), width_(width) {}

  void print_header() const {
    for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      for (int c = 0; c < width_; ++c) std::printf("%s", c ? "-" : " ");
    }
    std::printf("\n");
  }

  void cell(const std::string& s) const { std::printf("%*s", width_, s.c_str()); }
  void cell(double v, int precision = 2) const {
    std::printf("%*.*f", width_, precision, v);
  }
  void cell(std::size_t v) const {
    std::printf("%*llu", width_, static_cast<unsigned long long>(v));
  }
  void end_row() const { std::printf("\n"); }

 private:
  std::vector<std::string> headers_;
  int width_;
};

}  // namespace pqra::bench
