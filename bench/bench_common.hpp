#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the experiment harnesses: environment knobs and
/// fixed-width table printing.
///
/// Knobs (all optional):
///   PQRA_RUNS=<n>   override the number of repetitions per configuration
///   PQRA_FAST=1     shrink sweeps for a quick smoke run
///   PQRA_SEED=<n>   master seed (default 1)
///   PQRA_JOBS=<n>   worker threads for replication loops (0 / unset =
///                   hardware concurrency).  Output is byte-identical for
///                   any value — see docs/PERFORMANCE.md.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace pqra::bench {

inline std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<std::size_t>(parsed);
}

inline bool env_fast() { return env_size_t("PQRA_FAST", 0) != 0; }

inline std::uint64_t env_seed() {
  return static_cast<std::uint64_t>(env_size_t("PQRA_SEED", 1));
}

/// Number of repetitions; the paper uses 7 runs per configuration (§7).
inline std::size_t env_runs(std::size_t fallback = 7) {
  return env_size_t("PQRA_RUNS", env_fast() ? 2 : fallback);
}

/// Worker threads for the replication loops (sim::ParallelRunner); 0 means
/// hardware concurrency.
inline std::size_t env_jobs() { return env_size_t("PQRA_JOBS", 0); }

/// Wall-clock scope behind the standard stderr timing line
///
///   timing: <runs> runs in <wall> s wall (jobs=<jobs>) | <rate> events/s
///
/// — the same format examples/experiment_cli.cpp emits and
/// bench/run_benches.sh scrapes into the events_per_s JSON field.  Construct
/// at the top of main(), feed it work units as they complete (simulated
/// events where a DES runs; samples for the analytic sweeps), and call
/// emit() once before returning.  Not thread-safe: fold per-run counts in
/// after a ParallelRunner::map, not inside it.
class Timing {
 public:
  Timing() : start_(std::chrono::steady_clock::now()) {}

  void add(std::uint64_t events, std::size_t runs = 1) {
    events_ += events;
    runs_ += runs;
  }

  void emit(std::size_t jobs) const {
    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::fprintf(stderr,
                 "timing: %zu runs in %.3f s wall (jobs=%zu) | %.0f events/s\n",
                 runs_, wall, jobs,
                 wall > 0.0 ? static_cast<double>(events_) / wall : 0.0);
  }

 private:
  std::chrono::steady_clock::time_point start_;
  std::uint64_t events_ = 0;
  std::size_t runs_ = 0;
};

/// Fixed-width table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 12)
      : headers_(std::move(headers)), width_(width) {}

  void print_header() const {
    for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      for (int c = 0; c < width_; ++c) std::printf("%s", c ? "-" : " ");
    }
    std::printf("\n");
  }

  void cell(const std::string& s) const { std::printf("%*s", width_, s.c_str()); }
  void cell(double v, int precision = 2) const {
    std::printf("%*.*f", width_, precision, v);
  }
  void cell(std::size_t v) const {
    std::printf("%*llu", width_, static_cast<unsigned long long>(v));
  }
  void end_row() const { std::printf("\n"); }

 private:
  std::vector<std::string> headers_;
  int width_;
};

}  // namespace pqra::bench
