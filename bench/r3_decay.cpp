/// \file r3_decay.cpp
/// Validates condition [R3] via the Theorem 1 decay bound: the probability
/// that a write is still visible (some replica of its quorum not yet
/// overwritten) after l subsequent writes is at most k ((n-k)/n)^l, which
/// vanishes as l grows — so no write is read from infinitely often.

#include <cstdio>

#include "bench_common.hpp"
#include "core/spec/probabilistic_checks.hpp"
#include "quorum/probabilistic.hpp"
#include "util/math.hpp"

int main() {
  using namespace pqra;
  const std::size_t trials = bench::env_fast() ? 2000 : 20000;
  util::Rng rng(bench::env_seed());
  bench::Timing timing;

  const std::size_t n = 34;
  std::printf("[R3] / Theorem 1: P[write survives l subsequent writes] "
              "<= k ((n-k)/n)^l   (n = %zu, %zu trials)\n\n",
              n, trials);

  bench::Table table({"k", "l", "survival_sim", "bound"});
  table.print_header();
  for (std::size_t k : {1u, 2u, 4u, 6u, 12u}) {
    quorum::ProbabilisticQuorums qs(n, k);
    for (std::size_t l : {1u, 2u, 5u, 10u, 20u, 50u}) {
      double sim = core::spec::r3_survival_rate(qs, l, trials, rng);
      timing.add(trials);  // one "event" per simulated write sequence
      double bound = util::r3_survival_bound(n, k, l);
      table.cell(k);
      table.cell(l);
      table.cell(sim, 4);
      table.cell(bound, 4);
      table.end_row();
    }
    std::printf("\n");
  }
  std::printf("every simulated value sits at or below its bound (within "
              "Monte-Carlo noise), and both columns decay to zero: each "
              "write is eventually forgotten.\n");
  timing.emit(1);
  return 0;
}
