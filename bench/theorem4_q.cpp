/// \file theorem4_q.cpp
/// Validates Theorem 4 / condition [R5] and Corollary 7 numerically.
///
/// For a sweep of (n, k): prints the exact overlap probability
/// q = 1 - C(n-k,k)/C(n,k), its Corollary-7 relaxation 1 - ((n-k)/n)^k, the
/// simulated mean of Y (reads until a fixed write's quorum is hit) against
/// the geometric prediction 1/q, and the simulated tail P(Y > r) against
/// (1-q)^r — the inequality [R5] asserts.

#include <cmath>
#include <cstdio>
#include <numeric>

#include "bench_common.hpp"
#include "core/spec/probabilistic_checks.hpp"
#include "quorum/probabilistic.hpp"
#include "util/math.hpp"

int main() {
  using namespace pqra;
  const std::size_t samples = bench::env_fast() ? 4000 : 40000;
  util::Rng rng(bench::env_seed());

  std::printf("Theorem 4 / [R5]: q = 1 - C(n-k,k)/C(n,k); E[Y] <= 1/q\n");
  std::printf("(%zu simulated writes per configuration)\n\n", samples);

  bench::Table table({"n", "k", "q_exact", "q_cor7", "1/q", "E[Y]_sim",
                      "P(Y>3)", "bound(1-q)^3"});
  table.print_header();

  const std::size_t ns[] = {16, 34, 64, 100};
  for (std::size_t n : ns) {
    for (std::size_t k = 1; k <= n / 2; k = (k < 4 ? k + 1 : k * 2)) {
      double q = util::quorum_overlap_probability(n, k);
      double q_c7 = 1.0 - util::nonoverlap_upper_bound(n, k);
      quorum::ProbabilisticQuorums qs(n, k);
      auto ys = core::spec::r5_y_samples(qs, samples, rng);
      double mean = std::accumulate(ys.begin(), ys.end(), 0.0) /
                    static_cast<double>(ys.size());
      double tail3 = 0;
      for (auto y : ys) {
        if (y > 3) ++tail3;
      }
      tail3 /= static_cast<double>(ys.size());

      table.cell(n);
      table.cell(k);
      table.cell(q, 4);
      table.cell(q_c7, 4);
      table.cell(1.0 / q, 2);
      table.cell(mean, 2);
      table.cell(tail3, 4);
      table.cell(std::pow(1.0 - q, 3.0), 4);
      table.end_row();
    }
  }

  std::printf("\nCorollary 7 (rounds/pseudocycle bound 1/(1-((n-k)/n)^k)):\n\n");
  bench::Table c7({"n", "k=1", "k=sqrt(n)", "k=2sqrt(n)", "k=n/2"});
  c7.print_header();
  for (std::size_t n : ns) {
    auto rt = [n](std::size_t k) {
      return util::corollary7_rounds_per_pseudocycle(n, k);
    };
    auto s = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    c7.cell(n);
    c7.cell(rt(1), 2);
    c7.cell(rt(s), 2);
    c7.cell(rt(std::min(2 * s, n)), 4);
    c7.cell(rt(n / 2), 4);
    c7.end_row();
  }
  std::printf("\n§6.4 check: with k = sqrt(n) the expected rounds per "
              "pseudocycle stay between 1 and 2 for every n.\n");
  return 0;
}
