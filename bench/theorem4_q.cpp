/// \file theorem4_q.cpp
/// Validates Theorem 4 / condition [R5] and Corollary 7 numerically.
///
/// For a sweep of (n, k): prints the exact overlap probability
/// q = 1 - C(n-k,k)/C(n,k), its Corollary-7 relaxation 1 - ((n-k)/n)^k, the
/// simulated mean of Y (reads until a fixed write's quorum is hit) against
/// the geometric prediction 1/q, and the simulated tail P(Y > r) against
/// (1-q)^r — the inequality [R5] asserts.

#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "core/spec/probabilistic_checks.hpp"
#include "quorum/probabilistic.hpp"
#include "sim/parallel_runner.hpp"
#include "util/math.hpp"

int main() {
  using namespace pqra;
  const std::size_t samples = bench::env_fast() ? 4000 : 40000;
  const util::Rng master(bench::env_seed());

  std::printf("Theorem 4 / [R5]: q = 1 - C(n-k,k)/C(n,k); E[Y] <= 1/q\n");
  std::printf("(%zu simulated writes per configuration)\n\n", samples);

  bench::Table table({"n", "k", "q_exact", "q_cor7", "1/q", "E[Y]_sim",
                      "P(Y>3)", "bound(1-q)^3"});
  table.print_header();

  // Each (n, k) configuration samples from its own forked stream, so rows
  // are order-independent and the sweep parallelises without changing any
  // printed number (PQRA_JOBS only moves wall-clock).
  struct Config {
    std::size_t n, k;
  };
  std::vector<Config> configs;
  const std::size_t ns[] = {16, 34, 64, 100};
  for (std::size_t n : ns) {
    for (std::size_t k = 1; k <= n / 2; k = (k < 4 ? k + 1 : k * 2)) {
      configs.push_back({n, k});
    }
  }

  struct Row {
    double mean = 0.0;
    double tail3 = 0.0;
  };
  sim::ParallelRunner pool(bench::env_jobs());
  bench::Timing timing;
  std::vector<Row> rows = pool.map<Row>(configs.size(), [&](std::size_t i) {
    const auto [n, k] = configs[i];
    quorum::ProbabilisticQuorums qs(n, k);
    util::Rng rng = master.fork(1000 + i);
    auto ys = core::spec::r5_y_samples(qs, samples, rng);
    Row row;
    row.mean = std::accumulate(ys.begin(), ys.end(), 0.0) /
               static_cast<double>(ys.size());
    for (auto y : ys) {
      if (y > 3) row.tail3 += 1.0;
    }
    row.tail3 /= static_cast<double>(ys.size());
    return row;
  });
  // One "event" per simulated write; folded after the map (Timing is not
  // thread-safe).
  timing.add(static_cast<std::uint64_t>(configs.size()) * samples,
             configs.size());

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto [n, k] = configs[i];
    double q = util::quorum_overlap_probability(n, k);
    double q_c7 = 1.0 - util::nonoverlap_upper_bound(n, k);
    table.cell(n);
    table.cell(k);
    table.cell(q, 4);
    table.cell(q_c7, 4);
    table.cell(1.0 / q, 2);
    table.cell(rows[i].mean, 2);
    table.cell(rows[i].tail3, 4);
    table.cell(std::pow(1.0 - q, 3.0), 4);
    table.end_row();
  }

  std::printf("\nCorollary 7 (rounds/pseudocycle bound 1/(1-((n-k)/n)^k)):\n\n");
  bench::Table c7({"n", "k=1", "k=sqrt(n)", "k=2sqrt(n)", "k=n/2"});
  c7.print_header();
  for (std::size_t n : ns) {
    auto rt = [n](std::size_t k) {
      return util::corollary7_rounds_per_pseudocycle(n, k);
    };
    auto s = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    c7.cell(n);
    c7.cell(rt(1), 2);
    c7.cell(rt(s), 2);
    c7.cell(rt(std::min(2 * s, n)), 4);
    c7.cell(rt(n / 2), 4);
    c7.end_row();
  }
  std::printf("\n§6.4 check: with k = sqrt(n) the expected rounds per "
              "pseudocycle stay between 1 and 2 for every n.\n");
  timing.emit(pool.jobs());
  return 0;
}
