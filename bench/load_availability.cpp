/// \file load_availability.cpp
/// Regenerates the §4 load/availability comparison (the Naor–Wool trade-off
/// and how probabilistic quorums break it).
///
/// For each quorum system over ~31-36 servers: quorum size, analytic load
/// lower bound max(1/c, c/n), empirically measured busiest-server load,
/// availability (min crashes to disable, analytic == brute-force-verified in
/// tests), and Monte-Carlo survival probability at several crash rates.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "quorum/analysis.hpp"
#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "quorum/rowa.hpp"
#include "quorum/singleton.hpp"
#include "sim/parallel_runner.hpp"

int main() {
  using namespace pqra;
  using namespace pqra::quorum;
  const std::size_t samples = bench::env_fast() ? 5000 : 50000;
  const std::size_t trials = bench::env_fast() ? 2000 : 20000;
  const util::Rng master(bench::env_seed());

  // Comparable sizes: FPP(5) has n = 31; everything else uses n ~ 31-36.
  std::vector<std::unique_ptr<QuorumSystem>> systems;
  systems.push_back(std::make_unique<ProbabilisticQuorums>(31, 6));  // ~sqrt n
  systems.push_back(std::make_unique<ProbabilisticQuorums>(31, 12));
  systems.push_back(std::make_unique<MajorityQuorums>(31));
  systems.push_back(std::make_unique<FppQuorums>(5));        // n = 31
  systems.push_back(std::make_unique<GridQuorums>(6, 6));    // n = 36
  systems.push_back(std::make_unique<ReadOneWriteAll>(31));
  systems.push_back(std::make_unique<SingletonQuorums>(31));

  std::printf("§4 — load and availability of quorum systems (~31-36 servers)\n");
  std::printf("load = empirical busiest-server access frequency over %zu "
              "reads;\navailability = min crashes disabling every read "
              "quorum; surv(f) = Monte-Carlo survival with i.i.d. crash "
              "probability f (%zu trials)\n\n",
              samples, trials);

  bench::Table table({"system", "n", "|rq|", "|wq|", "load_lb", "load_r",
                      "load_w", "avail_r", "avail_w", "surv_r(.3)",
                      "surv_w(.3)"},
                     13);
  table.print_header();
  // Each system's Monte-Carlo estimates draw from a forked stream keyed on
  // its row index, so the rows are order-independent and can run on the
  // PQRA_JOBS worker pool without changing any printed number.
  struct Row {
    LoadEstimate load_r;
    LoadEstimate load_w;
    double surv_r = 0.0;
    double surv_w = 0.0;
  };
  sim::ParallelRunner pool(bench::env_jobs());
  bench::Timing timing;
  std::vector<Row> rows = pool.map<Row>(systems.size(), [&](std::size_t i) {
    const QuorumSystem& qs = *systems[i];
    util::Rng rng = master.fork(100 + i);
    Row row;
    row.load_r = empirical_load(qs, AccessKind::kRead, rng, samples);
    row.load_w = empirical_load(qs, AccessKind::kWrite, rng, samples);
    row.surv_r = survival_probability(qs, AccessKind::kRead, 0.3, rng, trials);
    row.surv_w = survival_probability(qs, AccessKind::kWrite, 0.3, rng, trials);
    return row;
  });
  // One "event" per Monte-Carlo draw (2 load estimates + 2 survival runs
  // per system); folded after the map (Timing is not thread-safe).
  timing.add(static_cast<std::uint64_t>(systems.size()) *
                 (2 * samples + 2 * trials),
             systems.size());
  for (std::size_t i = 0; i < systems.size(); ++i) {
    const auto& qs = systems[i];
    std::size_t n = qs->num_servers();
    std::size_t cr = qs->quorum_size(AccessKind::kRead);
    std::size_t cw = qs->quorum_size(AccessKind::kWrite);
    table.cell(qs->name().substr(0, 12));
    table.cell(n);
    table.cell(cr);
    table.cell(cw);
    // Naor–Wool applies to the smallest quorum of the (bipartite) system;
    // the busiest server over a mixed workload pays at least this.
    table.cell(load_lower_bound(n, std::min(cr, cw)), 3);
    table.cell(rows[i].load_r.busiest, 3);
    table.cell(rows[i].load_w.busiest, 3);
    table.cell(qs->min_kill(AccessKind::kRead));
    table.cell(qs->min_kill(AccessKind::kWrite));
    table.cell(rows[i].surv_r, 3);
    table.cell(rows[i].surv_w, 3);
    table.end_row();
  }

  std::printf(
      "\nthe trade-off (Naor–Wool): strict systems with sqrt(n) load (fpp, "
      "grid) have only Theta(sqrt n) availability; majority has Theta(n) "
      "availability but load ~1/2.\nprobabilistic(k~sqrt n) achieves BOTH: "
      "load k/n ~ 1/sqrt(n) and availability n-k+1 = Theta(n) — the headline "
      "of Malkhi et al. reviewed in §4.\n");
  timing.emit(pool.jobs());
  return 0;
}
