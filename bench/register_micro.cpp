/// \file register_micro.cpp
/// google-benchmark microbenchmarks of the substrate hot paths: event queue
/// throughput, quorum sampling, the probability formulas, end-to-end
/// register operations in the DES, and one full small Alg. 1 execution.

#include <benchmark/benchmark.h>

#include <memory>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "core/quorum_register_client.hpp"
#include "core/server_process.hpp"
#include "iter/alg1_des.hpp"
#include "net/sim_transport.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"
#include "util/math.hpp"

namespace {

using namespace pqra;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    util::Rng rng(1);
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule_in(rng.uniform01(), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_QuorumSampling(benchmark::State& state) {
  quorum::ProbabilisticQuorums qs(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1)));
  util::Rng rng(7);
  std::vector<quorum::ServerId> q;
  for (auto _ : state) {
    qs.pick(quorum::AccessKind::kRead, rng, q);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QuorumSampling)->Args({34, 6})->Args({34, 18})->Args({1024, 32});

void BM_OverlapProbability(benchmark::State& state) {
  std::uint64_t k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::quorum_overlap_probability(1024, k));
    k = k % 512 + 1;
  }
}
BENCHMARK(BM_OverlapProbability);

void BM_RegisterReadOp(benchmark::State& state) {
  const std::size_t n = 34;
  const auto k = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  auto delay = sim::make_constant_delay(1.0);
  net::SimTransport transport(sim, *delay, util::Rng(1), n + 1);
  std::vector<std::unique_ptr<core::ServerProcess>> servers;
  for (std::size_t s = 0; s < n; ++s) {
    servers.push_back(std::make_unique<core::ServerProcess>(
        transport, static_cast<net::NodeId>(s)));
    servers.back()->replica().preload(
        0, util::encode(std::vector<std::int64_t>(34, 7)));
  }
  quorum::ProbabilisticQuorums qs(n, k);
  core::QuorumRegisterClient client(sim, transport, n, qs, 0, util::Rng(2));
  for (auto _ : state) {
    bool done = false;
    client.read(0, [&done](core::ReadResult) { done = true; });
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegisterReadOp)->Arg(1)->Arg(6)->Arg(18);

void BM_RegisterWriteOp(benchmark::State& state) {
  const std::size_t n = 34;
  sim::Simulator sim;
  auto delay = sim::make_constant_delay(1.0);
  net::SimTransport transport(sim, *delay, util::Rng(1), n + 1);
  std::vector<std::unique_ptr<core::ServerProcess>> servers;
  for (std::size_t s = 0; s < n; ++s) {
    servers.push_back(std::make_unique<core::ServerProcess>(
        transport, static_cast<net::NodeId>(s)));
  }
  quorum::ProbabilisticQuorums qs(n, 6);
  core::QuorumRegisterClient client(sim, transport, n, qs, 0, util::Rng(2));
  std::vector<std::int64_t> row(34, 3);
  for (auto _ : state) {
    bool done = false;
    client.write(0, util::encode(row), [&done](core::Timestamp) {
      done = true;
    });
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegisterWriteOp);

void BM_ApspApply(benchmark::State& state) {
  apps::Graph g = apps::make_chain(static_cast<std::size_t>(state.range(0)));
  apps::ApspOperator op(g);
  std::vector<iter::Value> x;
  for (std::size_t i = 0; i < op.num_components(); ++i) {
    x.push_back(op.initial(i));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.apply(i, x));
    i = (i + 1) % op.num_components();
  }
}
BENCHMARK(BM_ApspApply)->Arg(16)->Arg(34);

void BM_Alg1EndToEnd(benchmark::State& state) {
  apps::Graph g = apps::make_chain(8);
  apps::ApspOperator op(g);
  quorum::MajorityQuorums qs(8);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    iter::Alg1Options options;
    options.quorums = &qs;
    options.seed = seed++;
    iter::Alg1Result r = iter::run_alg1(op, options);
    benchmark::DoNotOptimize(r.rounds);
  }
}
BENCHMARK(BM_Alg1EndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
