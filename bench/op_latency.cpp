/// \file op_latency.cpp
/// Ablation: per-operation latency of the quorum register vs quorum size
/// and delay model.  A quorum operation completes when the *slowest* of its
/// k request/ack exchanges returns, so latency is the maximum of k
/// round-trips: constant delays give exactly 2 units independent of k, and
/// exponential delays grow with k like the expected maximum of k
/// Erlang(2, 1) variables — measured here against a numeric reference.

#include <cmath>
#include <cstdio>
#include <memory>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "bench_common.hpp"
#include "iter/alg1_des.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "quorum/probabilistic.hpp"

namespace {

using namespace pqra;

/// E[max of k Erlang(2,1)] by numeric integration of 1 - F(x)^k with
/// F(x) = 1 - e^{-x}(1+x).
double expected_max_erlang2(std::size_t k, double step = 0.001,
                            double horizon = 60.0) {
  double acc = 0.0;
  for (double x = 0.0; x < horizon; x += step) {
    double cdf = 1.0 - std::exp(-x) * (1.0 + x);
    acc += (1.0 - std::pow(cdf, static_cast<double>(k))) * step;
  }
  return acc;
}

}  // namespace

int main() {
  bench::Timing timing;
  const std::size_t runs = bench::env_runs(3);
  const std::uint64_t seed = bench::env_seed();
  const std::size_t chain = bench::env_fast() ? 8 : 12;

  apps::Graph g = apps::make_chain(chain);
  apps::ApspOperator op(g);
  const std::size_t n = 34;

  std::printf("register operation latency vs quorum size (n = %zu replicas, "
              "APSP workload, %zu runs)\n\n",
              n, runs);
  bench::Table table({"k", "sync_read", "sync_write", "async_read",
                      "async_write", "E[maxErl2]"},
                     13);
  table.print_header();
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u, 18u}) {
    // One metrics registry per delay model; the client latency histograms
    // (exact sum/count, so exact means) accumulate across the runs.
    obs::Registry sync_reg(obs::Concurrency::kSingleThread);
    obs::Registry async_reg(obs::Concurrency::kSingleThread);
    quorum::ProbabilisticQuorums qs(n, k);
    for (std::size_t run = 0; run < runs; ++run) {
      for (bool synchronous : {true, false}) {
        iter::Alg1Options options;
        options.quorums = &qs;
        options.synchronous = synchronous;
        options.seed = seed + run * 17 + k;
        options.round_cap = 5000;
        options.metrics = synchronous ? &sync_reg : &async_reg;
        timing.add(iter::run_alg1(op, options).events_processed);
      }
    }
    namespace names = obs::names;
    table.cell(k);
    table.cell(sync_reg.histogram(names::kClientReadLatency, "").mean(), 3);
    table.cell(sync_reg.histogram(names::kClientWriteLatency, "").mean(), 3);
    table.cell(async_reg.histogram(names::kClientReadLatency, "").mean(), 3);
    table.cell(async_reg.histogram(names::kClientWriteLatency, "").mean(), 3);
    table.cell(expected_max_erlang2(k), 3);
    table.end_row();
  }
  std::printf("\nsync latency is exactly 2 (two constant hops); async "
              "latency tracks the expected max of k Erlang(2) round trips — "
              "the per-op price of larger quorums that §6.4's message counts "
              "do not show.\n");
  timing.emit(1);
  return 0;
}
