/// \file msg_complexity.cpp
/// Regenerates the §6.4 message-complexity comparison (Eqns 1-3).
///
/// Per-pseudocycle message cost of executing the APSP ACO with:
///   - monotone probabilistic quorums, k = ceil(sqrt(n))  (Eqn 1)
///   - strict majority quorums, k = floor(n/2)+1          (high availability)
///   - strict grid quorums, k = 2 sqrt(n) - 1             (optimal load)
///   - strict FPP quorums, k ~ sqrt(n)                    (optimal load)
///
/// Analytic model: M_prob = 2 c m (p+1) k with c the measured rounds per
/// pseudocycle, M_str = 2 m (p+1) k (one round per pseudocycle).  The
/// harness prints both the measured messages per pseudocycle and the model,
/// then the paper's asymptotic conclusion table.

#include <cmath>
#include <cstdio>
#include <memory>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "bench_common.hpp"
#include "iter/alg1_des.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"

namespace {

using namespace pqra;

struct Row {
  std::string label;
  std::size_t n = 0;
  std::size_t k = 0;
  double rounds_per_pc = 0.0;
  double msgs_per_pc = 0.0;
  double model = 0.0;
};

Row measure(const std::string& label, const quorum::QuorumSystem& qs,
            bool monotone, const apps::ApspOperator& op, std::size_t runs,
            std::uint64_t seed, bench::Timing& timing) {
  Row row;
  row.label = label;
  row.n = qs.num_servers();
  row.k = qs.quorum_size(quorum::AccessKind::kRead);
  util::OnlineStats rpp, mpp;
  for (std::size_t run = 0; run < runs; ++run) {
    // Fresh registry per run: the message counter must be divided by this
    // run's pseudocycle count, so it cannot accumulate across runs.
    obs::Registry registry(obs::Concurrency::kSingleThread);
    iter::Alg1Options options;
    options.quorums = &qs;
    options.monotone = monotone;
    options.synchronous = true;
    options.seed = seed + run;
    options.round_cap = 50000;
    options.metrics = &registry;
    iter::Alg1Result r = iter::run_alg1(op, options);
    timing.add(r.events_processed);
    if (!r.converged || r.pseudocycles == 0) continue;
    const double msgs_total = static_cast<double>(
        registry.counter(obs::names::kTransportMessages, "").value());
    rpp.add(static_cast<double>(r.rounds) /
            static_cast<double>(r.pseudocycles));
    mpp.add(msgs_total / static_cast<double>(r.pseudocycles));
  }
  row.rounds_per_pc = rpp.mean();
  row.msgs_per_pc = mpp.mean();
  const double m = static_cast<double>(op.num_components());
  const double p = m;  // one process per row
  row.model = 2.0 * row.rounds_per_pc * m * (p + 1.0) *
              static_cast<double>(row.k);
  return row;
}

}  // namespace

int main() {
  const std::size_t runs = bench::env_runs(5);
  const std::uint64_t seed = bench::env_seed();

  // n = 31 replicas lets FPP(5) participate; the grid uses 36.  The chain
  // length (= m = p) is decoupled from n here to keep runtimes sane.
  const std::size_t chain = bench::env_fast() ? 8 : 16;

  apps::Graph g = apps::make_chain(chain);
  apps::ApspOperator op(g);

  std::printf("§6.4 — expected message complexity per pseudocycle\n");
  std::printf("APSP on a %zu-vertex chain (m = p = %zu), synchronous, "
              "%zu runs; model column = 2 c m (p+1) k (Eqns 1-2)\n\n",
              chain, chain, runs);

  quorum::ProbabilisticQuorums prob_sqrt(31, 6);   // k = ceil(sqrt(31))
  quorum::MajorityQuorums majority(31);            // k = 16
  quorum::FppQuorums fpp(5);                       // n = 31, k = 6
  quorum::GridQuorums grid(6, 6);                  // n = 36, k = 11
  quorum::ProbabilisticQuorums prob_maj(31, 16);   // probabilistic, big k

  bench::Timing timing;
  bench::Table table({"strategy", "n", "k", "rounds/pc", "msgs/pc(sim)",
                      "msgs/pc(model)"},
                     15);
  table.print_header();
  Row rows[] = {
      measure("prob k=sqrt(n)", prob_sqrt, true, op, runs, seed, timing),
      measure("majority", majority, false, op, runs, seed + 100, timing),
      measure("fpp k~sqrt(n)", fpp, false, op, runs, seed + 200, timing),
      measure("grid 6x6", grid, false, op, runs, seed + 300, timing),
      measure("prob k=n/2+1", prob_maj, true, op, runs, seed + 400, timing),
  };
  for (const Row& row : rows) {
    table.cell(row.label);
    table.cell(row.n);
    table.cell(row.k);
    table.cell(row.rounds_per_pc, 2);
    table.cell(row.msgs_per_pc, 0);
    table.cell(row.model, 0);
    table.end_row();
  }

  // The asymptotic half of §6.4: M_str(majority)/M_prob grows as Theta(sqrt n)
  // ("asymptotically larger than M_prob for any p").  Model values with the
  // Corollary 7 c_n; no simulation needed at scale.
  std::printf("\nscaling of the high-availability regime (model, m = p = 16):\n\n");
  bench::Table scaling({"n", "k=ceil(sqrt n)", "c_n", "M_prob", "M_maj",
                        "ratio"},
                       15);
  scaling.print_header();
  for (std::size_t n : {25u, 49u, 100u, 225u, 400u, 900u}) {
    auto k = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    double c = util::corollary7_rounds_per_pseudocycle(n, k);
    const double m = 16.0, p = 16.0;
    double m_prob = 2.0 * c * m * (p + 1.0) * static_cast<double>(k);
    double m_maj = 2.0 * m * (p + 1.0) * (static_cast<double>(n) / 2.0 + 1.0);
    scaling.cell(n);
    scaling.cell(k);
    scaling.cell(c, 3);
    scaling.cell(m_prob, 0);
    scaling.cell(m_maj, 0);
    scaling.cell(m_maj / m_prob, 2);
    scaling.end_row();
  }

  const double ratio_high_avail = rows[1].msgs_per_pc / rows[0].msgs_per_pc;
  const double ratio_opt_load = rows[2].msgs_per_pc / rows[0].msgs_per_pc;
  std::printf(
      "\nhigh-availability regime (Eqn 3): majority / probabilistic = %.2f "
      "(theory ~ (n/2) / (c sqrt(n)) = %.2f) -> probabilistic wins\n",
      ratio_high_avail,
      (31.0 / 2.0 + 1.0) / (rows[0].rounds_per_pc * 6.0));
  std::printf(
      "optimal-load regime: fpp / probabilistic = %.2f — same Theta(m p "
      "sqrt(n)) message complexity (the strict system pays with Theta(sqrt "
      "n) availability instead, see load_availability)\n",
      ratio_opt_load);
  timing.emit(1);
  return 0;
}
