/// \file delay_ablation.cpp
/// Ablation: §7 only contrasts constant vs exponential delays and observes
/// that "the structure of a round causes the differences ... to average
/// out".  This harness re-runs the Figure-2 midpoint (monotone registers,
/// selected quorum sizes) under four delay models of equal mean to test how
/// far that observation generalizes, including a heavy-tailed model.

#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "bench_common.hpp"
#include "iter/alg1_des.hpp"
#include "iter/pseudocycle.hpp"
#include "iter/rounds.hpp"
#include "quorum/probabilistic.hpp"
#include "util/stats.hpp"

// delay_ablation needs run_alg1 with a custom delay model, which Alg1Options
// does not expose (the paper's two models are built in).  Rather than widen
// that experiment-facing struct for one ablation, this harness reproduces
// the run loop with sim_time as the comparison metric.

#include "core/server_process.hpp"
#include "net/sim_transport.hpp"

namespace {

using namespace pqra;

/// Rounds to convergence under an arbitrary delay model; a trimmed copy of
/// run_alg1's setup (monotone clients, p = m).
double rounds_under(const apps::ApspOperator& op, std::size_t k,
                    sim::DelayModel& delays, std::size_t runs,
                    std::uint64_t seed, bench::Timing* timing) {
  util::OnlineStats rounds;
  for (std::size_t run = 0; run < runs; ++run) {
    // run_alg1 hard-codes the two §7 models, so the generic-delay path
    // builds the same topology by hand.
    const std::size_t m = op.num_components();
    quorum::ProbabilisticQuorums qs(m, k);
    util::Rng master(seed + run);
    sim::Simulator sim;
    net::SimTransport transport(sim, delays, master.fork(1),
                                static_cast<net::NodeId>(2 * m));
    std::vector<std::unique_ptr<core::ServerProcess>> servers;
    for (std::size_t s = 0; s < m; ++s) {
      servers.push_back(std::make_unique<core::ServerProcess>(
          transport, static_cast<net::NodeId>(s)));
      for (std::size_t j = 0; j < m; ++j) {
        servers.back()->replica().preload(static_cast<net::RegisterId>(j),
                                          op.initial(j));
      }
    }

    struct Proc {
      std::unique_ptr<core::QuorumRegisterClient> client;
      std::vector<iter::Value> local;
      std::size_t outstanding = 0;
      bool correct = false;
    };
    std::vector<Proc> procs(m);
    iter::RoundTracker tracker(m);
    std::size_t correct_count = 0;
    bool done = false;
    std::size_t final_rounds = 0;

    std::function<void(std::size_t)> start = [&](std::size_t i) {
      Proc& p = procs[i];
      p.outstanding = m;
      for (std::size_t j = 0; j < m; ++j) {
        p.client->read(static_cast<net::RegisterId>(j),
                       [&, i, j](core::ReadResult r) {
                         Proc& q = procs[i];
                         q.local[j] = std::move(r.value);
                         if (--q.outstanding > 0) return;
                         q.local[i] = op.apply(i, q.local);
                         q.client->write(
                             static_cast<net::RegisterId>(i),
                             iter::Value(q.local[i]),
                             [&, i](core::Timestamp) {
                               Proc& z = procs[i];
                               bool now = op.locally_converged(i, z.local[i],
                                                               z.local);
                               if (now != z.correct) {
                                 z.correct = now;
                                 if (now) {
                                   ++correct_count;
                                 } else {
                                   --correct_count;
                                 }
                               }
                               tracker.iteration_completed(i);
                               if (correct_count == m) {
                                 final_rounds =
                                     tracker.rounds_including_partial();
                                 done = true;
                                 sim.request_stop();
                                 return;
                               }
                               start(i);
                             });
                       });
      }
    };
    core::ClientOptions copts;
    copts.monotone = true;
    for (std::size_t i = 0; i < m; ++i) {
      procs[i].client = std::make_unique<core::QuorumRegisterClient>(
          sim, transport, static_cast<net::NodeId>(m + i), qs, 0,
          master.fork(100 + i), copts, nullptr);
      procs[i].local.resize(m);
    }
    for (std::size_t i = 0; i < m; ++i) start(i);
    sim.run();
    if (timing != nullptr) timing->add(sim.events_processed());
    if (done) rounds.add(static_cast<double>(final_rounds));
  }
  return rounds.mean();
}

}  // namespace

int main() {
  const std::size_t runs = bench::env_runs(5);
  const std::uint64_t seed = bench::env_seed();
  const std::size_t chain = bench::env_fast() ? 8 : 16;

  apps::Graph g = apps::make_chain(chain);
  apps::ApspOperator op(g);

  struct Model {
    const char* label;
    std::unique_ptr<sim::DelayModel> model;
  };
  // All four have mean delay 1.
  Model models[] = {
      {"constant(1)", sim::make_constant_delay(1.0)},
      {"exponential", sim::make_exponential_delay(1.0)},
      {"uniform(0,2)", sim::make_uniform_delay(0.0, 2.0)},
      // min 0.1 + lognormal(mu, 0.9) with mean 0.9: heavy tail, mean 1.
      {"lognormal", sim::make_lognormal_delay(
                        0.1, std::log(0.9) - 0.9 * 0.9 / 2.0, 0.9)},
  };

  bench::Timing timing;
  std::printf("delay-model ablation — APSP on a %zu-chain, monotone "
              "registers, mean delay 1 in every model (%zu runs)\n\n",
              chain, runs);
  bench::Table table({"k", "constant", "exponential", "uniform", "lognormal"},
                     13);
  table.print_header();
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    table.cell(k);
    for (Model& m : models) {
      table.cell(rounds_under(op, k, *m.model, runs, seed + k, &timing), 2);
    }
    table.end_row();
    std::fflush(stdout);
  }
  std::printf("\nthe §7 observation holds beyond its two models: round "
              "structure averages the delay distribution out, so rounds to "
              "convergence are nearly model-independent (heavy tails only "
              "stretch wall-clock time, visible in op_latency).\n");
  timing.emit(1);
  return 0;
}
