#!/usr/bin/env bash
# Machine-readable benchmark harness for the DES hot path.
#
# Usage:  bench/run_benches.sh BUILD_DIR [OUT_JSON]
#
# Runs a fixed set of workloads from BUILD_DIR and writes one JSON object to
# OUT_JSON (default BENCH.json in the current directory):
#
#   {
#     "meta":    { host facts: cores, build dir, date },
#     "benches": {
#       "<name>": { "wall_s": ..., "events_per_s": ..., "ops_per_s": ... }
#     }
#   }
#
# events_per_s comes from experiment_cli's stderr timing line and is null
# for builds that predate it (the harness still times them, so before/after
# wall-clock comparisons work against any revision).  Knobs: PQRA_JOBS caps
# the parallel runs; BENCH_REPEAT (default 3) repeats each workload and
# keeps the best wall time.
set -u

BUILD_DIR=${1:?usage: run_benches.sh BUILD_DIR [OUT_JSON]}
OUT_JSON=${2:-BENCH.json}
REPEAT=${BENCH_REPEAT:-3}
CORES=$(nproc 2>/dev/null || echo 1)

CLI="$BUILD_DIR/examples/experiment_cli"
BENCH="$BUILD_DIR/bench"

# Refuse to record numbers from a tree that violates the project's
# determinism invariants: BENCH_*.json timings are only comparable across
# revisions when every run is byte-identically replayable, and pqra_lint is
# the source-level gate for exactly that (docs/STATIC_ANALYSIS.md).
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
LINT=$(cd "$BUILD_DIR" 2>/dev/null && pwd)/tools/lint/pqra_lint
if [ ! -x "$LINT" ]; then
  echo "run_benches.sh: $LINT not built; run" >&2
  echo "  cmake --build $BUILD_DIR --target pqra_lint" >&2
  exit 1
fi
if ! (cd "$REPO_ROOT" && "$LINT" --config .pqra-lint.toml \
        --cache "$(dirname "$LINT")/../../pqra_lint.cache" \
        src bench examples tools); then
  echo "run_benches.sh: pqra_lint found violations; refusing to bench" >&2
  exit 1
fi

now_ns() { date +%s%N; }

# time_best VAR_PREFIX -- cmd...: best-of-$REPEAT wall seconds into
# <prefix>_wall; last run's stderr into <prefix>_err.
time_best() {
  local prefix=$1; shift
  local best="" t0 t1 wall err_file
  err_file=$(mktemp)
  for _ in $(seq "$REPEAT"); do
    t0=$(now_ns)
    "$@" >/dev/null 2>"$err_file"
    t1=$(now_ns)
    wall=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.4f", (b - a) / 1e9 }')
    if [ -z "$best" ] || awk -v w="$wall" -v b="$best" \
        'BEGIN { exit !(w < b) }'; then
      best=$wall
    fi
  done
  eval "${prefix}_wall=$best"
  eval "${prefix}_err=\$(cat "$err_file")"
  rm -f "$err_file"
}

# events/s from the CLI's stderr "timing: ... | N events/s" line; empty when
# the build predates that line.
events_rate() { sed -n 's/.* | \([0-9.]*\) events\/s$/\1/p' <<<"$1" | tail -1; }

json_num() { [ -n "$1" ] && printf '%s' "$1" || printf 'null'; }

declare -A WALL RATE OPS

# 1. DES throughput, sequential: the schedule->fire hot path (EventFn +
#    shared payloads) dominates; events/s is the headline figure.
time_best cli_seq "$CLI" app=apsp graph=chain size=16 quorum=prob k=4 \
  monotone=1 sync=0 runs=20 seed=1 jobs=1
WALL[cli_apsp_seq]=$cli_seq_wall
RATE[cli_apsp_seq]=$(events_rate "$cli_seq_err")

# 2. Same workload on the parallel runner (jobs = hardware): measures the
#    replication-level speedup (1.0x expected on a single-core host).
time_best cli_par "$CLI" app=apsp graph=chain size=16 quorum=prob k=4 \
  monotone=1 sync=0 runs=20 seed=1 jobs="${PQRA_JOBS:-0}"
WALL[cli_apsp_par]=$cli_par_wall
RATE[cli_apsp_par]=$(events_rate "$cli_par_err")

# 3. Figure-2 sweep (fast preset): end-to-end harness cost, many small runs.
time_best fig2 env PQRA_FAST=1 "$BENCH/fig2_rounds"
WALL[fig2_rounds_fast]=$fig2_wall
RATE[fig2_rounds_fast]=$(events_rate "$fig2_err")

# 4. Convergence sweep over three applications (fast preset).
time_best conv env PQRA_FAST=1 "$BENCH/convergence_apps"
WALL[convergence_apps_fast]=$conv_wall
RATE[convergence_apps_fast]=$(events_rate "$conv_err")

# 5. Theorem-4 Monte Carlo (fast preset): quorum sampling throughput
#    (exercises Rng::sample_without_replacement scratch reuse).
time_best thm4 env PQRA_FAST=1 "$BENCH/theorem4_q"
WALL[theorem4_q_fast]=$thm4_wall
RATE[theorem4_q_fast]=$(events_rate "$thm4_err")

# 6. Sharded multi-key store at scale: 100k keys, 64 clients — the
#    batched-fan-out + calendar-queue stress case (one quorum fan-out per
#    client op, huge pending set from the retry timers).
time_best store "$CLI" app=store keys=100000 clients=64 ops=400 servers=32 \
  replicas=3 k=2 runs=3 seed=1 jobs=1
WALL[cli_store_100k]=$store_wall
RATE[cli_store_100k]=$(events_rate "$store_err")

# 7. Event-queue microbenchmark (fast preset): hold-model throughput of the
#    calendar queue vs the binary heap in isolation.
time_best qmicro env PQRA_FAST=1 "$BENCH/queue_micro"
WALL[queue_micro_fast]=$qmicro_wall
RATE[queue_micro_fast]=$(events_rate "$qmicro_err")

# ops/s where a natural operation count exists.
OPS[fig2_rounds_fast]=""    # rounds vary per cell; wall_s is the figure
for k in cli_apsp_seq cli_apsp_par; do
  OPS[$k]=""
done

{
  printf '{\n'
  printf '  "meta": {\n'
  printf '    "build_dir": "%s",\n' "$BUILD_DIR"
  printf '    "cores": %s,\n' "$CORES"
  printf '    "repeat": %s,\n' "$REPEAT"
  printf '    "date": "%s"\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  },\n'
  printf '  "benches": {\n'
  first=1
  for name in cli_apsp_seq cli_apsp_par fig2_rounds_fast \
              convergence_apps_fast theorem4_q_fast cli_store_100k \
              queue_micro_fast; do
    [ $first -eq 0 ] && printf ',\n'
    first=0
    printf '    "%s": { "wall_s": %s, "events_per_s": %s }' \
      "$name" "$(json_num "${WALL[$name]:-}")" \
      "$(json_num "${RATE[$name]:-}")"
  done
  printf '\n  }\n}\n'
} > "$OUT_JSON"

echo "wrote $OUT_JSON"
