/// \file fig2_rounds.cpp
/// Regenerates Figure 2 of the paper: quorum size vs rounds to convergence
/// for the APSP application on the 34-vertex unit-weight chain.
///
/// Paper setup (§7): 34 replicas, p = 34 processes (one per matrix row),
/// quorum sizes 1..18 (18 = floor(n/2)+1 makes all quorums overlap), four
/// combinations {monotone, non-monotone} x {synchronous, asynchronous
/// exponential delays}, 7 runs each; plus the Corollary 7 analytic bound
/// M / (1 - ((n-k)/n)^k) with M = ceil(log2 33) = 6.
///
/// Non-monotone runs that hit the round cap are reported as ">= cap" —
/// exactly how the paper reports its open squares ("lower bounds on the
/// actual values — the simulations did not complete").

#include <cstdio>
#include <string>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "bench_common.hpp"
#include "iter/alg1_des.hpp"
#include "quorum/probabilistic.hpp"
#include "sim/parallel_runner.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"

namespace {

using namespace pqra;

struct CellResult {
  double mean_rounds = 0.0;
  bool capped = false;  // some run hit the round cap: value is a lower bound
  std::uint64_t events = 0;  // simulator events across the cell's runs
};

CellResult run_cell(sim::ParallelRunner& pool, const apps::ApspOperator& op,
                    std::size_t n, std::size_t k, bool monotone,
                    bool synchronous, std::size_t runs, std::size_t round_cap,
                    std::uint64_t seed_base) {
  quorum::ProbabilisticQuorums qs(n, k);
  // Replications are independent seeded executions; fan them out and fold
  // the per-run figures back IN RUN ORDER, so the table is identical for
  // any PQRA_JOBS value.
  struct RunOut {
    double rounds = 0.0;
    bool converged = false;
    std::uint64_t events = 0;
  };
  std::vector<RunOut> outs = pool.map<RunOut>(runs, [&](std::size_t run) {
    iter::Alg1Options options;
    options.quorums = &qs;
    options.monotone = monotone;
    options.synchronous = synchronous;
    options.round_cap = round_cap;
    options.seed = seed_base + run * 9973 + k * 131 +
                   (monotone ? 17 : 0) + (synchronous ? 5 : 0);
    iter::Alg1Result r = iter::run_alg1(op, options);
    return RunOut{static_cast<double>(r.rounds), r.converged,
                  r.events_processed};
  });
  util::OnlineStats rounds;
  CellResult cell;
  for (const RunOut& o : outs) {
    rounds.add(o.rounds);
    cell.events += o.events;
    if (!o.converged) cell.capped = true;
  }
  cell.mean_rounds = rounds.mean();
  return cell;
}

std::string fmt_cell(const CellResult& c) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%.2f", c.capped ? ">=" : "",
                c.mean_rounds);
  return buf;
}

}  // namespace

int main() {
  const std::size_t chain = bench::env_fast() ? 12 : 34;
  const std::size_t n = chain;               // replicas (= graph size in §7)
  const std::size_t k_max = n / 2 + 1;       // 18 for n = 34
  const std::size_t runs = bench::env_runs(7);
  const std::size_t mono_cap = 20000;
  const std::size_t plain_cap = bench::env_fast() ? 100 : 400;
  const std::uint64_t seed = bench::env_seed();

  apps::Graph g = apps::make_chain(chain);
  apps::ApspOperator op(g);
  const std::size_t M = op.max_pseudocycles().value();

  std::printf("Figure 2 — Quorum Size vs Rounds (APSP on a %zu-vertex chain)\n",
              chain);
  std::printf("n = %zu replicas, p = %zu processes, %zu runs per point, "
              "M = %zu pseudocycles\n",
              n, chain, runs, M);
  std::printf("non-monotone runs are capped at %zu rounds and reported as "
              "lower bounds (as in the paper)\n\n",
              plain_cap);

  sim::ParallelRunner pool(bench::env_jobs());
  bench::Timing timing;

  bench::Table table({"k", "cor7_bound", "mono_sync", "mono_async",
                      "plain_sync", "plain_async"});
  table.print_header();
  for (std::size_t k = 1; k <= k_max; ++k) {
    double bound = static_cast<double>(M) *
                   util::corollary7_rounds_per_pseudocycle(n, k);
    CellResult mono_sync =
        run_cell(pool, op, n, k, true, true, runs, mono_cap, seed);
    CellResult mono_async =
        run_cell(pool, op, n, k, true, false, runs, mono_cap, seed + 1);
    CellResult plain_sync =
        run_cell(pool, op, n, k, false, true, runs, plain_cap, seed + 2);
    CellResult plain_async =
        run_cell(pool, op, n, k, false, false, runs, plain_cap, seed + 3);
    timing.add(mono_sync.events + mono_async.events + plain_sync.events +
                   plain_async.events,
               4 * runs);

    table.cell(k);
    table.cell(bound);
    table.cell(fmt_cell(mono_sync));
    table.cell(fmt_cell(mono_async));
    table.cell(fmt_cell(plain_sync));
    table.cell(fmt_cell(plain_async));
    table.end_row();
    std::fflush(stdout);
  }

  std::printf("\npaper reference points (n = 34): k = 1 -> bound 204, "
              "mono_sync 12.43, mono_async 9.08; k >= 4 monotone tracks the "
              "strict optimum of ~%zu rounds; non-monotone is worse than the "
              "monotone bound for k > 3.\n",
              M);
  timing.emit(pool.jobs());
  return 0;
}
