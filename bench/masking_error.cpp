/// \file masking_error.cpp
/// Extension: restores the Byzantine fault model of Malkhi–Reiter–Wright
/// that §4 simplifies away, and regenerates the masking-quorum error
/// analysis: the probability that a read quorum overlaps a write quorum in
/// fewer than 2b+1 servers (so b liars could out-vote the b+1 correct
/// vouchers needed), analytically (hypergeometric tail) and empirically,
/// plus an end-to-end fabrication-attack run against the masking client.

#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "core/byzantine.hpp"
#include "core/server_process.hpp"
#include "net/sim_transport.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"
#include "util/math.hpp"

namespace {

using namespace pqra;

double empirical_mask_error(std::size_t n, std::size_t k, std::size_t b,
                            std::size_t trials, util::Rng& rng) {
  quorum::ProbabilisticQuorums qs(n, k);
  std::vector<bool> in_w(n);
  std::vector<quorum::ServerId> w, r;
  std::size_t bad = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    qs.pick(quorum::AccessKind::kWrite, rng, w);
    std::fill(in_w.begin(), in_w.end(), false);
    for (auto s : w) in_w[s] = true;
    qs.pick(quorum::AccessKind::kRead, rng, r);
    std::size_t overlap = 0;
    for (auto s : r) overlap += in_w[s];
    if (overlap <= 2 * b) ++bad;
  }
  return static_cast<double>(bad) / static_cast<double>(trials);
}

struct AttackOutcome {
  double fabricated_rate = 0.0;
  double unvouched_rate = 0.0;
};

/// b colluding fabricators against a masking client with the same bound.
AttackOutcome run_attack(std::size_t n, std::size_t k, std::size_t b,
                         std::size_t reads, std::uint64_t seed) {
  sim::Simulator sim;
  auto delay = sim::make_constant_delay(1.0);
  net::SimTransport transport(sim, *delay, util::Rng(seed),
                              static_cast<net::NodeId>(n + 1));
  std::vector<std::unique_ptr<core::ByzantineServerProcess>> liars;
  std::vector<std::unique_ptr<core::ServerProcess>> honest;
  for (std::size_t s = 0; s < n; ++s) {
    if (s < b) {
      liars.push_back(std::make_unique<core::ByzantineServerProcess>(
          transport, static_cast<net::NodeId>(s),
          core::ByzantineMode::kFabricateHighTs));
    } else {
      honest.push_back(std::make_unique<core::ServerProcess>(
          transport, static_cast<net::NodeId>(s)));
      honest.back()->replica().preload(0, util::encode<std::int64_t>(0));
    }
  }
  quorum::ProbabilisticQuorums qs(n, k);
  core::MaskingRegisterClient client(sim, transport,
                                     static_cast<net::NodeId>(n), qs, 0,
                                     util::Rng(seed).fork(9), b);
  std::size_t fabricated = 0;
  std::function<void(std::size_t)> loop = [&](std::size_t remaining) {
    if (remaining == 0) return;
    client.write(0, util::encode<std::int64_t>(1), [&, remaining](
                                                       core::Timestamp) {
      client.read(0, [&, remaining](core::MaskedReadResult r) {
        if (r.vouched && r.ts >= (1ULL << 40)) ++fabricated;
        loop(remaining - 1);
      });
    });
  };
  loop(reads);
  sim.run();
  AttackOutcome out;
  out.fabricated_rate =
      static_cast<double>(fabricated) / static_cast<double>(reads);
  out.unvouched_rate =
      static_cast<double>(client.unvouched_reads()) /
      static_cast<double>(reads);
  return out;
}

}  // namespace

int main() {
  const std::size_t trials = bench::env_fast() ? 5000 : 50000;
  const std::size_t reads = bench::env_fast() ? 100 : 400;
  util::Rng rng(bench::env_seed());

  bench::Timing timing;
  const std::size_t n = 100;
  std::printf("masking quorums over n = %zu servers: error = P[|R∩W| <= 2b] "
              "(%zu trials per point)\n\n",
              n, trials);
  bench::Table table({"b", "k", "analytic", "empirical"}, 13);
  table.print_header();
  for (std::size_t b : {1u, 2u, 5u}) {
    for (std::size_t k : {10u, 20u, 30u, 40u, 50u}) {
      table.cell(b);
      table.cell(k);
      table.cell(util::masking_error_probability(n, k, b), 5);
      table.cell(empirical_mask_error(n, k, b, trials, rng), 5);
      timing.add(trials);  // one "event" per Monte-Carlo overlap draw
      table.end_row();
    }
    std::printf("\n");
  }

  std::printf("end-to-end fabrication attack (b colluding servers with a "
              "2^40 timestamp vs a b-masking client; %zu reads):\n\n",
              reads);
  bench::Table attack({"n", "k", "b", "fabricated", "unvouched"}, 13);
  attack.print_header();
  std::size_t idx = 0;
  for (auto [an, ak, ab] : {std::tuple<std::size_t, std::size_t, std::size_t>
                                {20, 10, 2},
                            {20, 14, 3},
                            {50, 25, 5}}) {
    AttackOutcome out =
        run_attack(an, ak, ab, reads, bench::env_seed() + idx++);
    timing.add(reads);  // one "event" per attacked read
    attack.cell(an);
    attack.cell(ak);
    attack.cell(ab);
    attack.cell(out.fabricated_rate, 4);
    attack.cell(out.unvouched_rate, 4);
    attack.end_row();
  }
  std::printf("\nfabricated = 0 within the fault bound: b colluders never "
              "reach b+1 vouchers.  'unvouched' reads are the liveness "
              "price, shrinking as k grows (the analytic table's error "
              "column).\n");
  timing.emit(1);
  return 0;
}
