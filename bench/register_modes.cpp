/// \file register_modes.cpp
/// Ablation of the register-mode design space on the Figure 2 workload:
/// plain vs monotone (§6.2) vs read-repair vs atomic write-back vs server
/// anti-entropy gossip vs snapshot reads, across quorum sizes.  Shows what
/// each mechanism buys: monotonicity removes regressions (the paper's
/// contribution), repair/write-back/gossip add propagation, and snapshot
/// reads collapse the per-round read fan-out from 2pmk to 2pk messages.

#include <cstdio>
#include <vector>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "bench_common.hpp"
#include "iter/alg1_des.hpp"
#include "quorum/probabilistic.hpp"
#include "util/stats.hpp"

namespace {

using namespace pqra;

struct ModeResult {
  double rounds = 0.0;
  double msgs = 0.0;
  bool capped = false;
  std::uint64_t events = 0;  // simulator events across the cell's runs
};

struct Mode {
  bool monotone = true;
  bool repair = false;
  bool wb = false;
  bool snapshot = false;
  double gossip = 0.0;  // 0 = off
};

ModeResult run_mode(const apps::ApspOperator& op, std::size_t n,
                    std::size_t k, const Mode& mode, std::size_t runs,
                    std::uint64_t seed) {
  quorum::ProbabilisticQuorums qs(n, k);
  util::OnlineStats rounds, msgs;
  ModeResult out;
  for (std::size_t run = 0; run < runs; ++run) {
    iter::Alg1Options options;
    options.quorums = &qs;
    options.monotone = mode.monotone;
    options.read_repair = mode.repair;
    options.write_back = mode.wb;
    options.snapshot_reads = mode.snapshot;
    if (mode.gossip > 0.0) options.gossip_interval = mode.gossip;
    options.synchronous = true;
    options.round_cap = 400;
    options.seed = seed + run * 37 + k;
    iter::Alg1Result r = iter::run_alg1(op, options);
    out.events += r.events_processed;
    rounds.add(static_cast<double>(r.rounds));
    msgs.add(static_cast<double>(r.messages.total));
    if (!r.converged) out.capped = true;
  }
  out.rounds = rounds.mean();
  out.msgs = msgs.mean();
  return out;
}

std::string fmt(const ModeResult& m) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%.2f", m.capped ? ">=" : "", m.rounds);
  return buf;
}

}  // namespace

int main() {
  const std::size_t chain = bench::env_fast() ? 10 : 20;
  const std::size_t runs = bench::env_runs(5);
  const std::uint64_t seed = bench::env_seed();

  apps::Graph g = apps::make_chain(chain);
  apps::ApspOperator op(g);

  std::printf("register-mode ablation — APSP on a %zu-chain, n = %zu "
              "replicas, synchronous, %zu runs (rounds to convergence; "
              "msg = total messages of the monotone run)\n\n",
              chain, chain, runs);
  bench::Timing timing;
  bench::Table table({"k", "plain", "monotone", "mono+repair", "atomic(wb)",
                      "mono+gossip", "mono+snap"},
                     13);
  table.print_header();
  std::vector<ModeResult> mono_row, snap_row;
  for (std::size_t k : {1u, 2u, 3u, 4u, 6u, 8u}) {
    ModeResult plain = run_mode(op, chain, k, {false}, runs, seed);
    ModeResult mono = run_mode(op, chain, k, {}, runs, seed);
    ModeResult repair =
        run_mode(op, chain, k, {.repair = true}, runs, seed);
    ModeResult wb = run_mode(op, chain, k, {.wb = true}, runs, seed);
    ModeResult gossip =
        run_mode(op, chain, k, {.gossip = 2.0}, runs, seed);
    ModeResult snap =
        run_mode(op, chain, k, {.snapshot = true}, runs, seed);
    timing.add(plain.events + mono.events + repair.events + wb.events +
                   gossip.events + snap.events,
               6 * runs);
    mono_row.push_back(mono);
    snap_row.push_back(snap);
    table.cell(k);
    table.cell(fmt(plain));
    table.cell(fmt(mono));
    table.cell(fmt(repair));
    table.cell(fmt(wb));
    table.cell(fmt(gossip));
    table.cell(fmt(snap));
    table.end_row();
    std::fflush(stdout);
  }
  std::printf("\nmessage totals at k = 4: monotone %.0f vs snapshot-reads "
              "%.0f — snapshots collapse the read fan-out from 2pmk to 2pk "
              "per round.\n",
              mono_row[3].msgs, snap_row[3].msgs);
  std::printf("read repair pushes fresh rows to stale replicas as a side "
              "effect of reading, so small-k convergence accelerates beyond "
              "plain monotonicity; write-back propagates even harder (every "
              "read re-writes a full quorum) and additionally buys "
              "atomicity, at double the read latency; server gossip rescues "
              "k = 1 entirely.\n");
  timing.emit(1);
  return 0;
}
