/// \file byzantine_demo.cpp
/// Lying replica servers vs the masking-quorum client — the fault model of
/// Malkhi–Reiter that the paper's §4 simplifies away, live.
///
/// Three acts:
///   1. a naive max-timestamp client is fooled by a single fabricating
///      server on almost every read;
///   2. the b-masking client ignores up to b colluding fabricators;
///   3. one colluder beyond the bound, and deception returns.
///
///   ./byzantine_demo [servers=12] [quorum_size=8] [fault_bound=2]

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>

#include "core/byzantine.hpp"
#include "core/quorum_register_client.hpp"
#include "core/server_process.hpp"
#include "net/sim_transport.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"
#include "util/math.hpp"

using namespace pqra;

namespace {

struct Outcome {
  int reads = 0;
  int fabricated = 0;
  int unvouched = 0;
};

/// Runs `reads` write+read pairs against a cluster with `liars` fabricating
/// servers.  When `fault_bound` < 0, uses the naive max-ts client.
Outcome run(std::size_t n, std::size_t k, std::size_t liars, int fault_bound,
            int reads, std::uint64_t seed) {
  sim::Simulator sim;
  auto delay = sim::make_constant_delay(1.0);
  net::SimTransport transport(sim, *delay, util::Rng(seed),
                              static_cast<net::NodeId>(n + 2));
  std::vector<std::unique_ptr<core::ByzantineServerProcess>> bad;
  std::vector<std::unique_ptr<core::ServerProcess>> good;
  for (std::size_t s = 0; s < n; ++s) {
    if (s < liars) {
      bad.push_back(std::make_unique<core::ByzantineServerProcess>(
          transport, static_cast<net::NodeId>(s),
          core::ByzantineMode::kFabricateHighTs));
    } else {
      good.push_back(std::make_unique<core::ServerProcess>(
          transport, static_cast<net::NodeId>(s)));
      good.back()->replica().preload(0, util::encode<std::int64_t>(0));
    }
  }
  quorum::ProbabilisticQuorums qs(n, k);
  Outcome out;
  constexpr core::Timestamp kFabTs = 1ULL << 40;

  if (fault_bound < 0) {
    // Naive client: plain quorum register, takes the max timestamp.
    core::QuorumRegisterClient writer(sim, transport,
                                      static_cast<net::NodeId>(n), qs, 0,
                                      util::Rng(seed).fork(1));
    core::QuorumRegisterClient reader(sim, transport,
                                      static_cast<net::NodeId>(n + 1), qs, 0,
                                      util::Rng(seed).fork(2));
    std::function<void(int)> loop = [&](int remaining) {
      if (remaining == 0) return;
      writer.write(0, util::encode<std::int64_t>(remaining),
                   [&, remaining](core::Timestamp) {
                     reader.read(0, [&, remaining](core::ReadResult r) {
                       ++out.reads;
                       if (r.ts >= kFabTs) ++out.fabricated;
                       loop(remaining - 1);
                     });
                   });
    };
    loop(reads);
    sim.run();
  } else {
    core::MaskingRegisterClient writer(sim, transport,
                                       static_cast<net::NodeId>(n), qs, 0,
                                       util::Rng(seed).fork(1),
                                       static_cast<std::size_t>(fault_bound));
    core::MaskingRegisterClient reader(sim, transport,
                                       static_cast<net::NodeId>(n + 1), qs, 0,
                                       util::Rng(seed).fork(2),
                                       static_cast<std::size_t>(fault_bound));
    std::function<void(int)> loop = [&](int remaining) {
      if (remaining == 0) return;
      writer.write(0, util::encode<std::int64_t>(remaining),
                   [&, remaining](core::Timestamp) {
                     reader.read(0, [&, remaining](core::MaskedReadResult r) {
                       ++out.reads;
                       if (!r.vouched) {
                         ++out.unvouched;
                       } else if (r.ts >= kFabTs) {
                         ++out.fabricated;
                       }
                       loop(remaining - 1);
                     });
                   });
    };
    loop(reads);
    sim.run();
  }
  return out;
}

void report(const char* label, const Outcome& o) {
  std::printf("  %-38s %3d reads: %3d deceived, %3d unvouched\n", label,
              o.reads, o.fabricated, o.unvouched);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const int b = argc > 3 ? std::atoi(argv[3]) : 2;

  std::printf("cluster: %zu servers, quorums of %zu; fabricators collude on "
              "a 2^40 timestamp\n",
              n, k);
  std::printf("masking error bound P[|R∩W| <= 2b] = %.4f at b = %d\n\n",
              util::masking_error_probability(n, k, static_cast<unsigned>(b)),
              b);

  report("act 1: naive client, 1 fabricator",
         run(n, k, 1, /*fault_bound=*/-1, 60, 1));
  Outcome act2 = run(n, k, static_cast<std::size_t>(b), b, 60, 2);
  report("act 2: masking client, b fabricators", act2);
  report("act 3: masking client, b+1 fabricators",
         run(n, k, static_cast<std::size_t>(b) + 1, b, 60, 3));

  std::printf("\nwithin the fault bound the masking rule silences the "
              "liars; one server past it and fabricated values reappear — "
              "exactly the b+1-voucher arithmetic.\n");
  return act2.fabricated == 0 ? 0 : 1;
}
