/// \file linear_jacobi.cpp
/// Distributed asynchronous Jacobi: solve a strictly diagonally dominant
/// linear system A x = b where each process owns one unknown and publishes
/// it through a monotone probabilistic quorum register.
///
///   ./linear_jacobi [unknowns=12] [quorum_size=3] [dominance=0.7]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/linear.hpp"
#include "iter/alg1_des.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"

using namespace pqra;

int main(int argc, char** argv) {
  const std::size_t m = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;
  const double dominance = argc > 3 ? std::atof(argv[3]) : 0.7;

  util::Rng rng(99);
  apps::LinearSystem sys = apps::make_dominant_system(m, dominance, rng);
  std::printf("random %zux%zu system, contraction factor alpha = %.2f\n", m,
              m, sys.contraction_factor());

  apps::JacobiOperator op(std::move(sys), 1e-9);
  quorum::ProbabilisticQuorums qs(m, k);
  std::printf("one process per unknown, registers over %s\n\n",
              qs.name().c_str());

  iter::Alg1Options options;
  options.quorums = &qs;
  options.monotone = true;
  options.synchronous = false;
  options.seed = 5;
  options.round_cap = 100000;
  iter::Alg1Result r = iter::run_alg1(op, options);

  std::printf("%s in %zu rounds (%zu pseudocycles, %llu messages)\n",
              r.converged ? "converged to |x_i - x*_i| <= 1e-9"
                          : "round cap reached",
              r.rounds, r.pseudocycles,
              static_cast<unsigned long long>(r.messages.total));

  std::printf("\n   i          x*_i   (direct Gaussian-elimination solve)\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(m, 8); ++i) {
    std::printf("  %2zu  %12.6f\n", i, op.solution()[i]);
  }
  if (m > 8) std::printf("  ... (%zu more)\n", m - 8);

  // Synchronous-Jacobi theory: error shrinks by alpha per sweep, so about
  // log(tol)/log(alpha) sweeps; asynchronous execution pays a modest factor
  // on top (Corollary 6: expected <= M/q).
  double sweeps = std::log(1e-9) / std::log(dominance);
  std::printf("\nfor reference, synchronous Jacobi needs ~%.0f sweeps at "
              "alpha=%.2f\n",
              sweeps, dominance);
  return r.converged ? 0 : 1;
}
