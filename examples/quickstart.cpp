/// \file quickstart.cpp
/// Five-minute tour of the library: build a simulated replica cluster,
/// write and read a monotone probabilistic quorum register, watch a stale
/// read happen with a tiny quorum, and check the recorded history against
/// the random-register specification.
///
///   ./quickstart

#include <cstdio>

#include "core/quorum_register_client.hpp"
#include "core/server_process.hpp"
#include "core/spec/checker.hpp"
#include "net/sim_transport.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"
#include "util/math.hpp"

using namespace pqra;

int main() {
  // --- 1. A simulated world: 16 replica servers, exponential link delays.
  const std::size_t n = 16;
  sim::Simulator sim;
  auto delays = sim::make_exponential_delay(1.0);
  net::SimTransport transport(sim, *delays, util::Rng(2026), n + 2);
  std::vector<std::unique_ptr<core::ServerProcess>> servers;
  for (std::size_t s = 0; s < n; ++s) {
    servers.push_back(std::make_unique<core::ServerProcess>(
        transport, static_cast<net::NodeId>(s)));
  }

  // --- 2. Two clients: a writer and a monotone reader, quorum size 4.
  quorum::ProbabilisticQuorums quorums(n, 4);
  core::spec::HistoryRecorder history;
  core::ClientOptions monotone;
  monotone.monotone = true;
  core::QuorumRegisterClient writer(sim, transport, n, quorums, 0,
                                    util::Rng(1), {}, &history);
  core::QuorumRegisterClient reader(sim, transport, n + 1, quorums, 0,
                                    util::Rng(2), monotone, &history);

  std::printf("cluster: %zu servers, %s, quorum size 4\n", n,
              quorums.name().c_str());
  std::printf("per-read miss probability C(n-k,k)/C(n,k) = %.3f\n\n",
              util::quorum_nonoverlap_probability(n, 4));

  // --- 3. The writer publishes a counter; the reader polls after each write.
  // Every replica starts with the initial value (timestamp 0), exactly like
  // the initial vector of an iterative algorithm.
  const net::RegisterId reg = 0;
  for (auto& server : servers) {
    server->replica().preload(reg, util::encode<std::int64_t>(0));
  }
  history.record_initial(reg);
  int stale = 0;
  std::function<void(int)> round = [&](int i) {
    if (i > 10) return;
    writer.write(reg, util::encode<std::int64_t>(i), [&, i](core::Timestamp ts) {
      reader.read(reg, [&, i, ts](core::ReadResult r) {
        bool is_stale = r.ts < ts;
        stale += is_stale;
        std::printf("write #%d (ts %llu) -> read returned ts %llu (%s)%s\n", i,
                    static_cast<unsigned long long>(ts),
                    static_cast<unsigned long long>(r.ts),
                    is_stale ? "stale" : "fresh",
                    r.from_monotone_cache ? " [from monotone cache]" : "");
        round(i + 1);
      });
    });
  };
  round(1);
  sim.run();

  std::printf("\n%d of 10 reads were stale — that is the price of quorums "
              "that only intersect with high probability.\n",
              stale);

  // --- 4. But the register behaved exactly as specified.
  auto verdict = core::spec::check_random_register(history.ops(), true);
  std::printf("spec check ([R1][R2][R4] + single-writer) on %zu recorded "
              "operations: %s\n",
              history.size(), verdict.ok ? "PASS" : "FAIL");
  for (const auto& v : verdict.violations) std::printf("  %s\n", v.c_str());
  return verdict.ok ? 0 : 1;
}
