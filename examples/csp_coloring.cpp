/// \file csp_coloring.cpp
/// Distributed constraint propagation over random registers: arc
/// consistency for an ordering chain and for a graph-coloring CSP, each
/// variable owned by one process, domains shared through monotone
/// probabilistic quorum registers.
///
///   ./csp_coloring [num_vars=10] [quorum_size=3]

#include <cstdio>
#include <cstdlib>

#include "apps/csp.hpp"
#include "iter/alg1_des.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"

using namespace pqra;

namespace {

void show_domains(const char* label, const std::vector<apps::DomainMask>& dom,
                  std::size_t d) {
  std::printf("%s\n", label);
  for (std::size_t v = 0; v < dom.size(); ++v) {
    std::printf("  x%-2zu in {", v);
    bool first = true;
    for (std::size_t a = 0; a < d; ++a) {
      if ((dom[v] >> a) & 1u) {
        std::printf("%s%zu", first ? "" : ",", a);
        first = false;
      }
    }
    std::printf("}\n");
  }
}

int run_instance(const char* title, apps::Csp csp, std::size_t k) {
  const std::size_t m = csp.num_vars();
  const std::size_t d = csp.domain_size;
  std::printf("=== %s (%zu variables, domain size %zu) ===\n", title, m, d);

  apps::ArcConsistencyOperator op(std::move(csp));
  std::vector<apps::DomainMask> initial(m, op.csp().full_mask());
  show_domains("initial domains:", initial, d);

  quorum::ProbabilisticQuorums qs(m, k);
  iter::Alg1Options options;
  options.quorums = &qs;
  options.monotone = true;
  options.synchronous = false;
  options.seed = 11;
  options.round_cap = 10000;
  iter::Alg1Result r = iter::run_alg1(op, options);

  std::vector<apps::DomainMask> final_dom;
  for (std::size_t v = 0; v < m; ++v) {
    final_dom.push_back(util::decode<apps::DomainMask>(op.fixed_point(v)));
  }
  std::printf("\nafter %zu rounds over %s:\n", r.rounds, qs.name().c_str());
  show_domains("arc-consistent domains:", final_dom, d);
  std::printf("distributed fixpoint %s the AC-3 reference\n\n",
              r.converged ? "matches" : "DID NOT reach");
  return r.converged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t m = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;

  int rc = run_instance("ordering chain x0 < x1 < ... ",
                        apps::make_ordering_csp(m, m + 2), k);

  // A wheel graph colored with 3 colors, hub pinned to color 0 by a unary
  // trick: constrain the hub against a ghost variable fixed to {0}.. keep it
  // simple instead: cycle + hub, 4 colors, shows sparse pruning.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::uint32_t cyc = static_cast<std::uint32_t>(m) - 1;
  for (std::uint32_t v = 0; v < cyc; ++v) {
    edges.emplace_back(v, (v + 1) % cyc);  // cycle
    edges.emplace_back(v, cyc);            // spokes to the hub
  }
  rc |= run_instance("wheel-graph coloring (hub + cycle)",
                     apps::make_coloring_csp(edges, m, 4), k);
  return rc;
}
