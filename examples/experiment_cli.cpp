/// \file experiment_cli.cpp
/// General experiment driver: pick an application, a graph/instance, a
/// quorum system and an execution mode on the command line, get the §7-style
/// metrics back.  This is the scripting entry point for anything the fixed
/// bench binaries do not cover.
///
///   ./experiment_cli app=apsp graph=chain size=34 quorum=prob k=4
///                    monotone=1 sync=1 runs=3 seed=1
///
/// keys (defaults):
///   app     = apsp | tc | csp | jacobi | agree | avail | store (apsp)
///   graph   = chain | cycle | grid | random | tree    (chain; apsp/tc only)
///   size    = problem size                            (16)
///   quorum  = prob | majority | grid | fpp | hier | rowa | singleton (prob)
///   k       = probabilistic quorum size               (4)
///   servers = replica count for prob/majority/rowa    (= size)
///   monotone= 0|1 (1)        sync = 0|1 (1)
///   runs    = repetitions (3)   seed = master seed (1)
///   cap     = round cap (20000)
///   churn   = server churn intensity: 0 = off, d in (0,1) = each server is
///             down a fraction d of the time (exponential up/down periods),
///             >= 1 = the legacy light-churn preset (0)
///   fault-plan = explicit fault schedule (net::FaultPlan::parse grammar,
///             e.g. "crash:2@10;recover:2@50;drop=0.02"); overrides churn
///   jobs    = worker threads for the replication loop (0 = hardware
///             concurrency; default 0).  Runs are independent seeded
///             replications, each with its own simulator and metrics shard,
///             merged in run order — stdout and every exported file are
///             byte-identical for any jobs value (the determinism regression
///             in tests/ enforces this).  Wall-clock timing goes to stderr.
///
/// app=store is the sharded multi-key register store (docs/SHARDING.md): c
/// clients run a mixed get/put workload over a keyspace of `keys` keys
/// (Zipf-skewed reads with theta in [0,1)), each key living on a
/// `replicas`-server consistent-hash group; key-addressed fault targets
/// (`crash:k12@10`) resolve through the ring.  Every run's history is
/// key-partitioned spec-checked (core/spec check_batch_by_key) and runs are
/// independent seeded replications merged in run order, so stdout and every
/// export stay byte-identical across --jobs.  Exit 0 iff every run's
/// checkers pass.
///
///   ./experiment_cli app=store keys=10000 theta=0.8 servers=16 replicas=3
///                    k=2 clients=4 ops=100 runs=3 seed=1 jobs=8
///
/// store keys (defaults): keys (10000), theta (0.8), servers (16),
/// replicas (3; 0 = full replication), k (2), vnodes (16), clients (4),
/// ops per client (100), monotone (1), horizon (600), churn/fault-plan,
/// runs (3), seed (1), jobs (0).
///
/// app=avail is the dynamic-availability experiment (ISSUE: churn where
/// probabilistic quorums keep answering while strict majorities stall): one
/// client issues alternating writes/reads under a deadline retry policy
/// against the selected quorum system AND a strict-majority baseline on the
/// same churn schedule, and reports each system's operation success rate
/// plus a stale-read tally (successful reads whose timestamp trails the
/// client's last acked write).  Exit status 0 means the paper's claim held
/// (selected >= 95% success, majority < 50%).
///
/// avail-only keys (docs/DURABILITY.md):
///   recovery = memory | amnesia | wal   (memory)
///     memory:  recovering servers keep their in-memory store (the legacy
///              behavior — a crash only severs the network).
///     amnesia: recovering servers come back empty, re-preloaded with the
///              initial value only — the worst case durable storage guards
///              against, surfaced in the stale-read tally.
///     wal:     every server runs a MemDisk-backed DurableStore
///              (WAL + snapshots); recovery replays the durable prefix.
///   snapshot-every = N   WAL appends between checkpoints for recovery=wal
///                        (64; 0 = never checkpoint)
///
/// Observability outputs (all optional; `--key value` and `--key=value`
/// spellings also accepted, so these read naturally as flags):
///   --metrics-out FILE   JSON snapshot of the metrics registry
///   --prom-out FILE      Prometheus text exposition of the same registry
///   --trace-out FILE     JSONL op trace of run 0 (spec-checkable)
///   --chrome-out FILE    run 0's trace as Chrome trace-event JSON
///   --spans-out FILE     JSONL causal spans of run 0 (obs/span.hpp)
///   --spans-chrome-out FILE  run 0's spans as Chrome trace-event JSON
///   --span-sample N      trace every Nth (hashed) operation (default 1 =
///                        all; 0 = none); deterministic in (seed, proc, op)
///   --profile-out FILE   DES self-profiler JSON for run 0 (per-event-tag
///                        fire counts + wall/simulated-time histograms).
///                        Wall times are nondeterministic by nature and go
///                        ONLY to this file; stdout and all other exports
///                        stay byte-identical with or without it.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/apsp.hpp"
#include "apps/approx_agreement.hpp"
#include "apps/csp.hpp"
#include "apps/graph.hpp"
#include "apps/linear.hpp"
#include "apps/transitive_closure.hpp"
#include "core/keyspace/sharded_store.hpp"
#include "core/quorum_register_client.hpp"
#include "core/server_process.hpp"
#include "core/spec/batch.hpp"
#include "core/spec/checker.hpp"
#include "core/spec/trace_bridge.hpp"
#include "iter/alg1_des.hpp"
#include "net/fault_plan.hpp"
#include "net/sim_transport.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/hierarchical.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "quorum/rowa.hpp"
#include "quorum/singleton.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/profiler.hpp"
#include "storage/durable_store.hpp"
#include "storage/mem_disk.hpp"
#include "util/codec.hpp"
#include "util/stats.hpp"
#include "util/zipf.hpp"

using namespace pqra;

namespace {

class Args {
 public:
  /// Accepts `key=value`, `--key=value` and `--key value` interchangeably.
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      while (!arg.empty() && arg.front() == '-') arg.erase(arg.begin());
      auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        continue;
      }
      if (i + 1 < argc) {
        values_[arg] = argv[++i];
        continue;
      }
      std::fprintf(stderr, "ignoring malformed argument '%s'\n", arg.c_str());
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::size_t get_n(const std::string& key, std::size_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoul(it->second);
  }

  double get_f(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

apps::Graph make_graph(const std::string& kind, std::size_t size,
                       util::Rng& rng) {
  if (kind == "chain") return apps::make_chain(size);
  if (kind == "cycle") return apps::make_cycle(size);
  if (kind == "grid") {
    std::size_t side = 2;
    while (side * side < size) ++side;
    return apps::make_grid_graph(side, side);
  }
  if (kind == "random") return apps::make_random_gnp(size, 0.3, 1, 9, rng);
  if (kind == "tree") return apps::make_random_tree(size, rng);
  std::fprintf(stderr, "unknown graph '%s', using chain\n", kind.c_str());
  return apps::make_chain(size);
}

std::unique_ptr<iter::AcoOperator> make_app(const std::string& app,
                                            const std::string& graph_kind,
                                            std::size_t size,
                                            util::Rng& rng) {
  if (app == "apsp") {
    return std::make_unique<apps::ApspOperator>(
        make_graph(graph_kind, size, rng));
  }
  if (app == "tc") {
    return std::make_unique<apps::TransitiveClosureOperator>(
        make_graph(graph_kind, size, rng));
  }
  if (app == "csp") {
    return std::make_unique<apps::ArcConsistencyOperator>(
        apps::make_ordering_csp(size, size + 2));
  }
  if (app == "jacobi") {
    return std::make_unique<apps::JacobiOperator>(
        apps::make_dominant_system(size, 0.7, rng), 1e-8);
  }
  if (app == "agree") {
    std::vector<double> inputs;
    for (std::size_t i = 0; i < size; ++i) {
      inputs.push_back(rng.uniform01() * 100.0);
    }
    return std::make_unique<apps::ApproxAgreementOperator>(std::move(inputs),
                                                           0.01);
  }
  std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
  return nullptr;
}

std::unique_ptr<quorum::QuorumSystem> make_quorums(const std::string& kind,
                                                   std::size_t servers,
                                                   std::size_t k) {
  if (kind == "prob") {
    return std::make_unique<quorum::ProbabilisticQuorums>(servers, k);
  }
  if (kind == "majority") {
    return std::make_unique<quorum::MajorityQuorums>(servers);
  }
  if (kind == "grid") {
    std::size_t side = 2;
    while (side * side < servers) ++side;
    return std::make_unique<quorum::GridQuorums>(side, side);
  }
  if (kind == "fpp") {
    // Smallest prime order with s^2 + s + 1 >= servers.
    std::size_t s = 2;
    while (s * s + s + 1 < servers || !util::is_prime(s)) ++s;
    return std::make_unique<quorum::FppQuorums>(s);
  }
  if (kind == "hier") {
    std::size_t h = 0, n = 1;
    while (n < servers) {
      n *= 3;
      ++h;
    }
    return std::make_unique<quorum::HierarchicalQuorums>(h);
  }
  if (kind == "rowa") return std::make_unique<quorum::ReadOneWriteAll>(servers);
  if (kind == "singleton") {
    return std::make_unique<quorum::SingletonQuorums>(servers);
  }
  std::fprintf(stderr, "unknown quorum system '%s'\n", kind.c_str());
  return nullptr;
}

/// Opens \p path for writing and hands the stream to \p write.  Returns
/// false (with a message) if the file cannot be created.
template <typename WriteFn>
bool write_file(const std::string& path, const char* what, WriteFn write) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for %s output\n", path.c_str(), what);
    return false;
  }
  write(out);
  std::printf("wrote %s to %s\n", what, path.c_str());
  return true;
}

/// Churn as a downtime fraction d: each server alternates exponential up
/// and down periods whose means split an ~80-time-unit cycle d/(1-d), so a
/// server is down a fraction d of the run in expectation.  Down periods are
/// long relative to an operation deadline, which is what starves strict
/// majorities while probabilistic quorums keep finding k live servers.
net::FaultPlan make_churn_plan(std::size_t num_servers, double downtime_frac,
                               double horizon, util::Rng& rng) {
  constexpr double kCycle = 400.0;
  return net::FaultPlan::random_churn(num_servers, horizon,
                                      kCycle * (1.0 - downtime_frac),
                                      kCycle * downtime_frac, rng);
}

/// The retry policy the availability experiment holds every system to: a
/// short per-attempt timeout, exponential backoff, and a hard operation
/// deadline well below typical down-period length.
core::RetryPolicy avail_retry_policy() {
  core::RetryPolicy retry;
  retry.rpc_timeout = 2.0;
  retry.backoff_factor = 1.5;
  retry.max_backoff = 4.0;
  retry.jitter = 0.1;
  retry.deadline = 25.0;
  return retry;
}

struct AvailTally {
  std::uint64_t attempted = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  /// Successful reads whose timestamp trails the client's last acked write
  /// — what recovery=amnesia produces and recovery=wal prevents.
  std::uint64_t stale_reads = 0;

  double success_rate() const {
    return attempted == 0 ? 0.0
                          : static_cast<double>(ok) /
                                static_cast<double>(attempted);
  }
};

/// Drives one client: alternating write/read on one register, a new
/// operation one time unit after the previous one settles, until the
/// horizon.  Lives on the heap for the simulator's lifetime (callbacks
/// capture `this`).
class AvailLoop {
 public:
  AvailLoop(sim::Simulator& simulator, core::QuorumRegisterClient& client,
            double horizon, AvailTally& tally)
      : simulator_(simulator),
        client_(client),
        horizon_(horizon),
        tally_(tally) {}

  void start() { step(); }

 private:
  void step() {
    if (simulator_.now() >= horizon_) return;
    ++tally_.attempted;
    if (tally_.attempted % 2 == 1) {
      client_.write(0, util::Codec<std::uint64_t>::encode(next_value_++),
                    [this](core::WriteResult r) {
                      if (ok_status(r.status)) last_write_ts_ = r.ts;
                      settle(r.status);
                    });
    } else {
      client_.read(0, [this](core::ReadResult r) {
        // A successful read older than the last acked write is a stale
        // read: under recovery=amnesia a recovering quorum can forget the
        // write entirely, which is exactly what the tally surfaces.
        if (ok_status(r.status) && r.ts < last_write_ts_) {
          ++tally_.stale_reads;
        }
        settle(r.status);
      });
    }
  }

  static bool ok_status(core::OpStatus status) {
    return status == core::OpStatus::kOk ||
           status == core::OpStatus::kDegraded;
  }

  void settle(core::OpStatus status) {
    if (ok_status(status)) {
      ++tally_.ok;
    } else {
      ++tally_.failed;
    }
    simulator_.schedule_in(1.0, [this] { step(); });
  }

  sim::Simulator& simulator_;
  core::QuorumRegisterClient& client_;
  double horizon_;
  AvailTally& tally_;
  std::uint64_t next_value_ = 1;
  core::Timestamp last_write_ts_ = 0;
};

/// What a recovering server does with its store (docs/DURABILITY.md).
enum class AvailRecovery { kMemory, kAmnesia, kWal };

/// Lifecycle hook applying the recovery mode on every crashed->up
/// transition: amnesia resets the store to the initial value only, wal
/// models the crash (drop volatile) and replays the durable prefix.
class AvailRecoveryDriver final : public net::NodeLifecycleListener {
 public:
  AvailRecoveryDriver(AvailRecovery mode,
                      std::vector<std::unique_ptr<core::ServerProcess>>& servers,
                      std::deque<storage::MemDisk>* disks,
                      std::deque<storage::DurableStore>* stores)
      : mode_(mode), servers_(servers), disks_(disks), stores_(stores) {}

  void on_recover(net::NodeId node) override {
    if (node >= servers_.size()) return;  // clients have no store
    core::Replica& replica = servers_[node]->replica();
    switch (mode_) {
      case AvailRecovery::kMemory:
        break;  // the legacy behavior: the store survives the crash
      case AvailRecovery::kAmnesia:
        replica.reset_store();
        replica.restore_entry(0, 0, net::Value{});
        break;
      case AvailRecovery::kWal:
        (*disks_)[node].drop_volatile();
        (*stores_)[node].recover();
        break;
    }
  }

 private:
  AvailRecovery mode_;
  std::vector<std::unique_ptr<core::ServerProcess>>& servers_;
  std::deque<storage::MemDisk>* disks_;
  std::deque<storage::DurableStore>* stores_;
};

/// One availability run of one quorum system under one churn schedule.
AvailTally run_availability_once(const quorum::QuorumSystem& quorums,
                                 double downtime_frac, double horizon,
                                 std::uint64_t seed, AvailRecovery recovery,
                                 std::size_t snapshot_every,
                                 obs::Registry* metrics) {
  const std::size_t n = quorums.num_servers();
  util::Rng master(seed);
  sim::Simulator simulator;
  std::unique_ptr<sim::DelayModel> delays = sim::make_exponential_delay(1.0);
  net::SimTransport transport(simulator, *delays, master.fork(1),
                              static_cast<net::NodeId>(n + 1));
  if (metrics != nullptr) {
    transport.bind_metrics(*metrics);
    transport.faults().bind_metrics(*metrics);
  }

  std::vector<std::unique_ptr<core::ServerProcess>> servers;
  servers.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    servers.push_back(std::make_unique<core::ServerProcess>(
        transport, static_cast<net::NodeId>(s), metrics));
    servers.back()->replica().preload(0, net::Value{});
  }

  // recovery=wal: one MemDisk + DurableStore per server, in deques so
  // attached listener pointers stay stable.  The checkpoint makes the
  // preloaded initial durable before any churn.
  std::deque<storage::MemDisk> disks;
  std::deque<storage::DurableStore> stores;
  if (recovery == AvailRecovery::kWal) {
    for (std::size_t s = 0; s < n; ++s) {
      disks.emplace_back(static_cast<net::NodeId>(s), &transport.faults(),
                         master.fork(300 + s));
      stores.emplace_back(disks.back(),
                          storage::DurableStore::Options{snapshot_every});
      stores.back().attach(servers[s]->replica());
      stores.back().checkpoint();
    }
  }
  AvailRecoveryDriver recovery_driver(recovery, servers, &disks, &stores);
  transport.faults().set_lifecycle_listener(&recovery_driver);

  util::Rng churn_rng(seed * 1000003 + 17);
  net::FaultPlan plan = make_churn_plan(n, downtime_frac, horizon, churn_rng);
  plan.install(simulator, transport);

  core::ClientOptions copts;
  copts.retry = avail_retry_policy();
  copts.metrics = metrics;
  core::QuorumRegisterClient client(simulator, transport,
                                    static_cast<net::NodeId>(n), quorums,
                                    /*server_base=*/0, master.fork(2), copts);

  AvailTally tally;
  AvailLoop loop(simulator, client, horizon, tally);
  loop.start();
  // Slack past the horizon lets the last operation reach its deadline.
  simulator.run_until(horizon + 100.0);

  // Publish the storage-layer counters into this run's metrics shard
  // (obs/names.hpp pqra_wal_* / pqra_snapshot_* / pqra_storage_*).
  if (metrics != nullptr && recovery == AvailRecovery::kWal) {
    namespace names = obs::names;
    storage::MemDisk::Counters disk_total;
    storage::DurableStore::Counters store_total;
    for (const storage::MemDisk& disk : disks) {
      disk_total.appends += disk.counters().appends;
      disk_total.append_bytes += disk.counters().append_bytes;
      disk_total.syncs += disk.counters().syncs;
      disk_total.lost_syncs += disk.counters().lost_syncs;
      disk_total.torn_syncs += disk.counters().torn_syncs;
      disk_total.snapshot_installs += disk.counters().snapshot_installs;
    }
    for (const storage::DurableStore& store : stores) {
      store_total.recoveries += store.counters().recoveries;
      store_total.snapshot_loads += store.counters().snapshot_loads;
      store_total.replayed_records += store.counters().replayed_records;
      store_total.torn_tails_dropped += store.counters().torn_tails_dropped;
    }
    metrics->counter(names::kWalAppends, "WAL records appended")
        .inc(disk_total.appends);
    metrics->counter(names::kWalAppendBytes, "WAL bytes appended")
        .inc(disk_total.append_bytes);
    metrics->counter(names::kWalSyncs, "WAL sync calls").inc(disk_total.syncs);
    metrics->counter(names::kWalLostSyncs, "WAL syncs lost to injection")
        .inc(disk_total.lost_syncs);
    metrics->counter(names::kWalTornSyncs, "WAL syncs torn by injection")
        .inc(disk_total.torn_syncs);
    metrics->counter(names::kSnapshotInstalls, "Snapshot images installed")
        .inc(disk_total.snapshot_installs);
    metrics->counter(names::kStorageRecoveries, "Durable store recoveries")
        .inc(store_total.recoveries);
    metrics->counter(names::kSnapshotLoads, "Snapshots loaded on recovery")
        .inc(store_total.snapshot_loads);
    metrics->counter(names::kWalReplayedRecords, "WAL records replayed")
        .inc(store_total.replayed_records);
    metrics->counter(names::kWalTornDropped, "Torn WAL tails discarded")
        .inc(store_total.torn_tails_dropped);
  }
  // The driver dies with this frame; detach it before the transport does.
  transport.faults().set_lifecycle_listener(nullptr);
  return tally;
}

/// app=avail: the selected system and a strict-majority baseline face the
/// same churn process; reports both success rates and exits 0 iff the
/// paper's availability claim held.
int run_availability(const Args& args) {
  const std::size_t servers = args.get_n("servers", 25);
  const std::size_t k = args.get_n("k", 4);
  const std::string quorum_kind = args.get("quorum", "prob");
  const std::size_t runs = args.get_n("runs", 3);
  const std::uint64_t seed = args.get_n("seed", 1);
  double churn = args.get_f("churn", 0.6);
  if (churn <= 0.0 || churn >= 1.0) {
    std::fprintf(stderr,
                 "app=avail needs churn in (0,1); using 0.6 instead of %g\n",
                 churn);
    churn = 0.6;
  }
  const double horizon = args.get_f("horizon", 6000.0);
  std::string recovery_name = args.get("recovery", "memory");
  AvailRecovery recovery = AvailRecovery::kMemory;
  if (recovery_name == "amnesia") {
    recovery = AvailRecovery::kAmnesia;
  } else if (recovery_name == "wal") {
    recovery = AvailRecovery::kWal;
  } else if (recovery_name != "memory") {
    std::fprintf(stderr,
                 "app=avail: unknown recovery '%s' (memory|amnesia|wal); "
                 "using memory\n",
                 recovery_name.c_str());
    recovery_name = "memory";
  }
  const std::size_t snapshot_every = args.get_n("snapshot-every", 64);
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string prom_out = args.get("prom-out", "");

  std::unique_ptr<quorum::QuorumSystem> selected =
      make_quorums(quorum_kind, servers, k);
  if (selected == nullptr) return 2;
  quorum::MajorityQuorums majority(servers);

  std::printf("availability under churn: n=%zu, downtime fraction %.2f, "
              "horizon %.0f, %zu runs, recovery=%s\n  %s vs %s baseline\n\n",
              servers, churn, horizon, runs, recovery_name.c_str(),
              selected->name().c_str(), majority.name().c_str());

  // The registry sees only the selected system's runs: mixing the baseline
  // into the same counters would make the exported fault/retry metrics
  // unattributable.  Each run reports into a private shard, merged below in
  // run order, so the export is identical for any jobs value.
  const bool want_metrics = !metrics_out.empty() || !prom_out.empty();
  obs::Registry registry(obs::Concurrency::kSingleThread);

  struct AvailRunOutput {
    AvailTally sel;
    AvailTally maj;
    std::unique_ptr<obs::Registry> shard;
  };
  sim::ParallelRunner pool(args.get_n("jobs", 0));
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<AvailRunOutput> outputs = pool.map<AvailRunOutput>(
      runs, [&](std::size_t run) {
        AvailRunOutput out;
        if (want_metrics) {
          out.shard =
              std::make_unique<obs::Registry>(obs::Concurrency::kSingleThread);
        }
        const std::uint64_t run_seed = seed + run * 7919;
        out.sel = run_availability_once(*selected, churn, horizon, run_seed,
                                        recovery, snapshot_every,
                                        out.shard.get());
        out.maj = run_availability_once(majority, churn, horizon, run_seed,
                                        recovery, snapshot_every, nullptr);
        return out;
      });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  AvailTally sel_total, maj_total;
  for (std::size_t run = 0; run < runs; ++run) {
    const AvailRunOutput& out = outputs[run];
    if (out.shard != nullptr) registry.merge_from(*out.shard);
    const AvailTally& sel = out.sel;
    const AvailTally& maj = out.maj;
    std::printf("  run %zu: %s %5.1f%% (%llu/%llu, %llu stale) | "
                "majority %5.1f%% (%llu/%llu, %llu stale)\n",
                run, selected->name().c_str(), 100.0 * sel.success_rate(),
                static_cast<unsigned long long>(sel.ok),
                static_cast<unsigned long long>(sel.attempted),
                static_cast<unsigned long long>(sel.stale_reads),
                100.0 * maj.success_rate(),
                static_cast<unsigned long long>(maj.ok),
                static_cast<unsigned long long>(maj.attempted),
                static_cast<unsigned long long>(maj.stale_reads));
    sel_total.attempted += sel.attempted;
    sel_total.ok += sel.ok;
    sel_total.failed += sel.failed;
    sel_total.stale_reads += sel.stale_reads;
    maj_total.attempted += maj.attempted;
    maj_total.ok += maj.ok;
    maj_total.failed += maj.failed;
    maj_total.stale_reads += maj.stale_reads;
  }
  // Wall-clock is nondeterministic by nature, so it goes to stderr: stdout
  // stays byte-comparable across jobs values.
  std::fprintf(stderr,
               "timing: %zu runs in %.3f s wall (jobs=%zu) | %.0f ops/s\n",
               runs, wall_s, pool.jobs(),
               wall_s > 0.0 ? static_cast<double>(sel_total.attempted +
                                                  maj_total.attempted) /
                                  wall_s
                            : 0.0);

  const double sel_rate = sel_total.success_rate();
  const double maj_rate = maj_total.success_rate();
  const bool claim_holds = sel_rate >= 0.95 && maj_rate < 0.5;
  std::printf("\n%s success %.1f%% (%llu stale reads) | majority success "
              "%.1f%% (%llu stale reads) | claim %s\n",
              selected->name().c_str(), 100.0 * sel_rate,
              static_cast<unsigned long long>(sel_total.stale_reads),
              100.0 * maj_rate,
              static_cast<unsigned long long>(maj_total.stale_reads),
              claim_holds ? "HOLDS" : "FAILED");

  bool outputs_ok = true;
  if (!metrics_out.empty()) {
    outputs_ok &= write_file(metrics_out, "metrics JSON", [&](auto& out) {
      obs::write_json(registry, out);
    });
  }
  if (!prom_out.empty()) {
    outputs_ok &= write_file(prom_out, "Prometheus metrics", [&](auto& out) {
      obs::write_prometheus(registry, out);
    });
  }
  return (claim_holds && outputs_ok) ? 0 : 1;
}

/// One store client's op loop: think delay, then a put on an owned key or a
/// (possibly Zipf-skewed) get on any key, sequentially until `ops` settle.
/// Heap-pinned for the simulator's lifetime (callbacks capture `this`).
class StoreLoop {
 public:
  StoreLoop(sim::Simulator& simulator, core::keyspace::ShardedStoreClient& c,
            util::Rng rng, std::size_t ops, std::size_t own_index,
            std::size_t num_clients, std::size_t keys_per_client,
            const util::Zipfian* zipf)
      : simulator_(simulator),
        client_(c),
        rng_(std::move(rng)),
        remaining_(ops),
        own_index_(own_index),
        num_clients_(num_clients),
        keys_per_client_(keys_per_client),
        zipf_(zipf) {}

  void start() { step(); }

 private:
  void step() {
    if (remaining_ == 0) return;
    --remaining_;
    simulator_.schedule_in(rng_.uniform01() * 2.0, sim::EventTag::kWorkload,
                           [this] { issue(); });
  }

  void issue() {
    const std::size_t total = keys_per_client_ * num_clients_;
    if (rng_.bernoulli(0.4)) {
      // Key k = slot * clients + owner: this client only puts its own keys
      // (single-writer-per-key, the store facade's contract).
      const std::size_t slot =
          keys_per_client_ > 1
              ? static_cast<std::size_t>(rng_.below(keys_per_client_))
              : 0;
      const auto key =
          static_cast<net::KeyId>(slot * num_clients_ + own_index_);
      client_.put(key, util::encode(++next_value_),
                  [this](core::Timestamp) { step(); });
    } else {
      const auto key = static_cast<net::KeyId>(
          zipf_ != nullptr ? zipf_->draw(rng_) : rng_.below(total));
      client_.get(key, [this](core::ReadResult) { step(); });
    }
  }

  sim::Simulator& simulator_;
  core::keyspace::ShardedStoreClient& client_;
  util::Rng rng_;
  std::size_t remaining_;
  std::size_t own_index_;
  std::size_t num_clients_;
  std::size_t keys_per_client_;
  const util::Zipfian* zipf_;
  std::int64_t next_value_ = 0;
};

struct StoreConfig {
  std::size_t keys = 10000;
  double theta = 0.8;
  std::size_t servers = 16;
  std::size_t replicas = 3;  ///< 0 = full replication
  std::size_t k = 2;
  std::size_t vnodes = 16;
  std::size_t clients = 4;
  std::size_t ops = 100;
  bool monotone = true;
  double horizon = 600.0;
  double churn = 0.0;
  net::FaultPlan fault_plan;
  bool have_fault_plan = false;
  /// Shared rank distribution, built once per invocation: the zeta
  /// normalization is O(keys) with a pow() per key, which at 10⁵ keys costs
  /// more than a run's whole setup.  Draw() is const and thread-safe, so
  /// every run (and every --jobs thread) samples the same object.
  const util::Zipfian* zipf = nullptr;
};

struct StoreRunOutput {
  std::uint64_t fingerprint = 0;
  std::uint64_t events = 0;
  std::size_t ops_checked = 0;
  std::size_t keys_touched = 0;
  std::size_t keys_checked = 0;
  bool spec_ok = false;
  std::string spec_summary;
  std::unique_ptr<obs::Registry> shard;
};

StoreRunOutput run_store_once(const StoreConfig& cfg, std::uint64_t run_seed,
                              obs::OpTraceSink* trace, obs::SpanSink* spans) {
  StoreRunOutput out;
  out.shard = std::make_unique<obs::Registry>(obs::Concurrency::kSingleThread);
  util::Rng master(run_seed);
  const auto n = static_cast<net::NodeId>(cfg.servers);
  // The keyspace is rounded up to a whole number of per-client slots so the
  // slot*clients+owner layout covers it exactly.
  const std::size_t keys_per_client =
      (cfg.keys + cfg.clients - 1) / cfg.clients;
  const std::size_t total_keys = keys_per_client * cfg.clients;
  const bool sharded = cfg.replicas > 0;

  core::keyspace::HashRing ring(cfg.vnodes);
  for (net::NodeId s = 0; s < n; ++s) ring.add_node(s);
  quorum::ProbabilisticQuorums quorums(sharded ? cfg.replicas : cfg.servers,
                                       cfg.k);

  sim::Simulator simulator;
  std::unique_ptr<sim::DelayModel> delays = sim::make_exponential_delay(1.0);
  net::SimTransport transport(simulator, *delays, master.fork(10),
                              static_cast<net::NodeId>(cfg.servers +
                                                       cfg.clients));
  transport.bind_metrics(*out.shard);
  transport.faults().bind_metrics(*out.shard);

  std::deque<core::ServerProcess> servers;
  for (net::NodeId s = 0; s < n; ++s) {
    servers.emplace_back(transport, s, out.shard.get());
  }

  // Every key reads as (ts 0, encoded zero) before its first put, so reads
  // are well-defined for [R2].  The replicas carry that as their shared
  // default initial value — observably identical to preloading the whole
  // keyspace, without materializing total_keys × replicas store entries
  // (which at 10⁵ keys cost more than the simulation they set up).
  core::spec::HistoryRecorder history;
  history.reserve(total_keys + 4 * cfg.clients * cfg.ops);
  const core::Value zero = util::encode<std::int64_t>(0);
  // Only written keys materialize store entries now; pre-size each store
  // for its expected share so the run does not pay a per-replica rehash
  // chain as writes trickle in.  (An over-estimate only costs memory.)
  const std::size_t expected_writes =
      std::min(total_keys, cfg.clients * cfg.ops);
  const std::size_t per_server =
      expected_writes * std::max<std::size_t>(cfg.replicas, 1) /
          std::max<std::size_t>(cfg.servers, 1) +
      16;
  for (core::ServerProcess& s : servers) {
    s.replica().set_default_initial(zero);
    s.replica().reserve(per_server);
  }
  for (std::size_t key = 0; key < total_keys; ++key) {
    history.record_initial(static_cast<net::KeyId>(key));
  }

  core::keyspace::ShardedStoreOptions sopts;
  sopts.client.monotone = cfg.monotone;
  sopts.client.metrics = out.shard.get();
  sopts.client.trace = trace;
  sopts.client.spans = spans;
  sopts.client.retry.rpc_timeout = 6.0;
  sopts.client.retry.backoff_factor = 1.5;
  sopts.client.retry.max_backoff = 24.0;
  sopts.client.retry.jitter = 0.1;

  // replicas=0 degenerates gracefully: the "group" is the whole ring, so
  // quorums sample over every server — full replication through the same
  // facade.
  std::deque<core::keyspace::ShardedStoreClient> clients;
  std::deque<StoreLoop> loops;
  for (std::size_t i = 0; i < cfg.clients; ++i) {
    clients.emplace_back(simulator, transport,
                         static_cast<net::NodeId>(cfg.servers + i), ring,
                         quorums, master.fork(500 + i), sopts, &history);
    loops.emplace_back(simulator, clients.back(), master.fork(900 + i),
                       cfg.ops, i, cfg.clients, keys_per_client, cfg.zipf);
  }

  // Fault schedule: explicit plan (key targets resolve through the ring) or
  // random churn; either way the horizon fully recovers the cluster so
  // pending ops complete and [R1] stays checkable.
  net::FaultPlan plan;
  if (cfg.have_fault_plan) {
    plan = cfg.fault_plan;
    if (plan.has_key_targets()) {
      plan = plan.resolve_keys([&](net::KeyId key) {
        return sharded ? ring.primary(key)
                       : static_cast<net::NodeId>(key % cfg.servers);
      });
    }
  } else if (cfg.churn > 0.0 && cfg.churn < 1.0) {
    util::Rng churn_rng(run_seed * 1000003 + 17);
    plan = make_churn_plan(cfg.servers, cfg.churn, cfg.horizon, churn_rng);
  }
  plan.install(simulator, transport);
  simulator.schedule_at(cfg.horizon, sim::EventTag::kFault, [&transport, n] {
    net::FaultInjector& inj = transport.faults();
    for (net::NodeId s = 0; s < n; ++s) {
      inj.recover(s);
      inj.clear_slow(s);
    }
    inj.heal();
    inj.set_message_faults(net::MessageFaults{});
  });

  for (StoreLoop& loop : loops) loop.start();
  simulator.run_until(cfg.horizon + 1000.0 +
                      60.0 * static_cast<double>(cfg.ops));

  out.fingerprint = simulator.fingerprint();
  out.events = simulator.events_processed();
  out.ops_checked = history.ops().size();
  for (core::keyspace::ShardedStoreClient& c : clients) {
    out.keys_touched += c.keys_touched();
  }

  core::spec::BatchOptions bo;
  bo.r4 = cfg.monotone;
  const core::spec::KeyedBatchResult batch =
      core::spec::check_batch_by_key(history.ops(), bo);
  out.keys_checked = batch.keys_checked;
  out.spec_ok = batch.ok();
  out.spec_summary = batch.summary();
  return out;
}

/// app=store: mixed-key Zipfian workload on the sharded store,
/// key-partitioned spec check per run, byte-identical across --jobs.
int run_store(const Args& args) {
  StoreConfig cfg;
  cfg.keys = args.get_n("keys", cfg.keys);
  cfg.theta = args.get_f("theta", cfg.theta);
  cfg.servers = args.get_n("servers", cfg.servers);
  cfg.replicas = args.get_n("replicas", cfg.replicas);
  cfg.k = args.get_n("k", cfg.k);
  cfg.vnodes = args.get_n("vnodes", cfg.vnodes);
  cfg.clients = args.get_n("clients", cfg.clients);
  cfg.ops = args.get_n("ops", cfg.ops);
  cfg.monotone = args.get_n("monotone", 1) != 0;
  cfg.horizon = args.get_f("horizon", cfg.horizon);
  cfg.churn = args.get_f("churn", cfg.churn);
  const std::size_t runs = args.get_n("runs", 3);
  const std::uint64_t seed = args.get_n("seed", 1);
  const std::string fault_spec = args.get("fault-plan", "");
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string prom_out = args.get("prom-out", "");
  const std::string trace_out = args.get("trace-out", "");
  const std::string spans_out = args.get("spans-out", "");
  const std::uint64_t span_sample = args.get_n("span-sample", 1);

  if (cfg.keys == 0 || cfg.clients == 0 || cfg.servers == 0 ||
      cfg.vnodes == 0 || cfg.theta < 0.0 || cfg.theta >= 1.0 ||
      cfg.replicas > cfg.servers ||
      cfg.k > (cfg.replicas > 0 ? cfg.replicas : cfg.servers)) {
    std::fprintf(stderr,
                 "app=store: need keys/clients/servers/vnodes > 0, theta in "
                 "[0,1), replicas <= servers, k <= group size\n");
    return 2;
  }
  if (!fault_spec.empty()) {
    try {
      cfg.fault_plan = net::FaultPlan::parse(fault_spec);
      cfg.have_fault_plan = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  std::printf("sharded store: keys=%zu theta=%g | servers=%zu replicas=%zu "
              "k=%zu vnodes=%zu | clients=%zu ops=%zu%s | %zu runs\n\n",
              cfg.keys, cfg.theta, cfg.servers, cfg.replicas, cfg.k,
              cfg.vnodes, cfg.clients, cfg.ops,
              (cfg.have_fault_plan || cfg.churn > 0.0) ? " | faults" : "",
              runs);

  // Trace and spans record run 0 only; every run reports into a private
  // metrics shard merged below in run order — the same discipline as the
  // iterative apps, so all outputs are byte-identical for any --jobs value.
  const bool want_trace = !trace_out.empty();
  const bool want_spans = !spans_out.empty();
  obs::Registry registry(obs::Concurrency::kSingleThread);
  obs::OpTraceSink trace;
  obs::SpanSink spans(obs::SpanSink::Options{seed, span_sample});

  sim::ParallelRunner pool(args.get_n("jobs", 0));
  // One zeta normalization for all runs (and all jobs threads); the rounded
  // keyspace mirrors run_store_once's slot layout.
  const std::size_t keys_rounded =
      (cfg.keys + cfg.clients - 1) / cfg.clients * cfg.clients;
  std::optional<util::Zipfian> zipf;
  if (cfg.theta > 0.0) zipf.emplace(keys_rounded, cfg.theta);
  cfg.zipf = zipf.has_value() ? &*zipf : nullptr;
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<StoreRunOutput> outputs =
      pool.map<StoreRunOutput>(runs, [&](std::size_t run) {
        return run_store_once(cfg, seed + run * 7919,
                              want_trace && run == 0 ? &trace : nullptr,
                              want_spans && run == 0 ? &spans : nullptr);
      });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  bool all_ok = true;
  std::uint64_t events_total = 0;
  for (std::size_t run = 0; run < runs; ++run) {
    const StoreRunOutput& out = outputs[run];
    registry.merge_from(*out.shard);
    events_total += out.events;
    all_ok &= out.spec_ok;
    std::printf("  run %zu: %s ops=%zu keys-touched=%zu fingerprint=%llu\n",
                run, out.spec_ok ? "ok " : "SPEC", out.ops_checked,
                out.keys_touched,
                static_cast<unsigned long long>(out.fingerprint));
    std::printf("    spec: %s\n", out.spec_summary.c_str());
  }
  std::fprintf(stderr,
               "timing: %zu runs in %.3f s wall (jobs=%zu) | %.0f events/s\n",
               runs, wall_s, pool.jobs(),
               wall_s > 0.0 ? static_cast<double>(events_total) / wall_s
                            : 0.0);
  std::printf("\nstore spec %s over %zu run(s)\n", all_ok ? "ok" : "FAILED",
              runs);

  bool outputs_ok = true;
  if (!metrics_out.empty()) {
    outputs_ok &= write_file(metrics_out, "metrics JSON", [&](auto& out) {
      obs::write_json(registry, out);
    });
  }
  if (!prom_out.empty()) {
    outputs_ok &= write_file(prom_out, "Prometheus metrics", [&](auto& out) {
      obs::write_prometheus(registry, out);
    });
  }
  if (!trace_out.empty()) {
    outputs_ok &= write_file(trace_out, "op trace JSONL", [&](auto& out) {
      obs::write_jsonl(trace.events(), out);
    });
  }
  if (want_spans) {
    spans.check(/*require_closed=*/false);
    std::printf("spans: %zu recorded, %zu still open\n", spans.size(),
                spans.open_spans());
    outputs_ok &= write_file(spans_out, "span JSONL", [&](auto& out) {
      obs::write_spans_jsonl(spans.spans(), out);
    });
  }
  return (all_ok && outputs_ok) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const std::string app = args.get("app", "apsp");
  if (app == "avail") return run_availability(args);
  if (app == "store") return run_store(args);
  const std::string graph = args.get("graph", "chain");
  const std::size_t size = args.get_n("size", 16);
  const std::string quorum_kind = args.get("quorum", "prob");
  const std::size_t servers = args.get_n("servers", size);
  const std::size_t k = args.get_n("k", 4);
  const bool monotone = args.get_n("monotone", 1) != 0;
  const bool sync = args.get_n("sync", 1) != 0;
  const std::size_t runs = args.get_n("runs", 3);
  const std::uint64_t seed = args.get_n("seed", 1);
  const std::size_t cap = args.get_n("cap", 20000);
  const double churn = args.get_f("churn", 0.0);
  const std::string fault_spec = args.get("fault-plan", "");
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string prom_out = args.get("prom-out", "");
  const std::string trace_out = args.get("trace-out", "");
  const std::string chrome_out = args.get("chrome-out", "");
  const std::string spans_out = args.get("spans-out", "");
  const std::string spans_chrome_out = args.get("spans-chrome-out", "");
  const std::uint64_t span_sample = args.get_n("span-sample", 1);
  const std::string profile_out = args.get("profile-out", "");

  util::Rng rng(seed);
  std::unique_ptr<iter::AcoOperator> op = make_app(app, graph, size, rng);
  std::unique_ptr<quorum::QuorumSystem> quorums =
      make_quorums(quorum_kind, servers, k);
  if (op == nullptr || quorums == nullptr) return 2;

  net::FaultPlan parsed_plan;
  if (!fault_spec.empty()) {
    try {
      parsed_plan = net::FaultPlan::parse(fault_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  const bool faulty = !fault_spec.empty() || churn > 0.0;

  std::printf("app=%s m=%zu | quorums=%s | %s, %s%s | %zu runs\n\n",
              op->name().c_str(), op->num_components(),
              quorums->name().c_str(), monotone ? "monotone" : "plain",
              sync ? "sync" : "async", faulty ? ", faults" : "", runs);

  // The op trace records run 0 only (a trace of one execution is what the
  // spec checkers and the Chrome viewer want — concatenating runs would
  // interleave unrelated histories).  Each run is an independent seeded
  // replication: it gets its own simulator, fault plan and metrics shard,
  // and the shards are merged into one registry IN RUN ORDER below, so
  // stdout and every exported file are byte-identical for any --jobs value.
  const bool want_trace = !trace_out.empty() || !chrome_out.empty();
  // Spans and the profiler follow the same run-0-only discipline: one
  // execution's causal tree (or cost profile) is the useful artifact, and
  // keeping the shared sinks off every other run makes them race-free and
  // byte-identical under jobs > 1.
  const bool want_spans = !spans_out.empty() || !spans_chrome_out.empty();
  const bool want_profile = !profile_out.empty();
  obs::Registry registry(obs::Concurrency::kSingleThread);
  obs::OpTraceSink trace;
  obs::SpanSink spans(obs::SpanSink::Options{seed, span_sample});
  sim::Profiler profiler;

  struct RunOutput {
    iter::Alg1Result r;
    std::unique_ptr<obs::Registry> shard;
  };
  sim::ParallelRunner pool(args.get_n("jobs", 0));
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<RunOutput> outputs = pool.map<RunOutput>(
      runs, [&](std::size_t run) {
        RunOutput out;
        out.shard =
            std::make_unique<obs::Registry>(obs::Concurrency::kSingleThread);
        iter::Alg1Options options;
        options.quorums = quorums.get();
        options.monotone = monotone;
        options.synchronous = sync;
        options.seed = seed + run * 7919;
        options.round_cap = cap;
        options.metrics = out.shard.get();
        if (want_trace && run == 0) {
          // Only run 0 touches the shared sink, so this stays race-free
          // under jobs > 1.
          options.trace = &trace;
          // A faulted run can end with ops still in flight, which the
          // completion-only trace cannot represent; record the full history
          // so the self-check below stays sound (see docs/FAULTS.md).
          options.record_history = faulty;
        }
        if (want_spans && run == 0) options.spans = &spans;
        if (want_profile && run == 0) options.profiler = &profiler;
        util::Rng churn_rng(seed + run);
        net::FaultPlan plan;
        if (!fault_spec.empty()) {
          // Explicit schedule: identical for every run (determinism tests
          // rely on byte-identical behaviour across invocations).
          plan = parsed_plan;
        } else if (churn > 0.0 && churn < 1.0) {
          plan = net::FaultPlan::random_churn(quorums->num_servers(), 2000.0,
                                              160.0 * (1.0 - churn),
                                              160.0 * churn, churn_rng);
        } else if (churn >= 1.0) {
          // Legacy preset: light churn, ~20% downtime.
          plan = net::FaultPlan::random_churn(quorums->num_servers(), 2000.0,
                                              60.0, 15.0, churn_rng);
        }
        if (faulty) {
          options.fault_plan = &plan;
          core::RetryPolicy retry;
          retry.rpc_timeout = 10.0;
          retry.backoff_factor = 2.0;
          retry.max_backoff = 40.0;
          retry.jitter = 0.1;  // dedicated stream; see FAULTS.md
          options.retry = retry;
          options.max_sim_time = 50000.0;
        }
        out.r = iter::run_alg1(*op, options);
        return out;
      });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::shared_ptr<core::spec::HistoryRecorder> run0_history;
  util::OnlineStats rounds, pcs, msgs, read_lat;
  std::size_t converged = 0;
  for (std::size_t run = 0; run < runs; ++run) {
    const iter::Alg1Result& r = outputs[run].r;
    registry.merge_from(*outputs[run].shard);
    if (run == 0) run0_history = r.history;
    converged += r.converged;
    rounds.add(static_cast<double>(r.rounds));
    pcs.add(static_cast<double>(r.pseudocycles));
    msgs.add(static_cast<double>(r.messages.total));
    read_lat.merge(r.read_latency);
    std::printf("  run %zu: %s rounds=%zu pseudocycles=%zu msgs=%llu "
                "retries=%llu\n",
                run, r.converged ? "ok " : "CAP", r.rounds, r.pseudocycles,
                static_cast<unsigned long long>(r.messages.total),
                static_cast<unsigned long long>(r.retries));
  }
  // Nondeterministic wall-clock figures go to stderr so stdout stays
  // byte-comparable across --jobs values.
  const double events =
      static_cast<double>(registry.counter(obs::names::kSimEvents).value());
  std::fprintf(stderr,
               "timing: %zu runs in %.3f s wall (jobs=%zu) | %.0f events/s\n",
               runs, wall_s, pool.jobs(),
               wall_s > 0.0 ? events / wall_s : 0.0);

  std::printf("\nconverged %zu/%zu | rounds %.2f +- %.2f | pseudocycles "
              "%.2f | msgs %.0f | read latency %.2f\n",
              converged, runs, rounds.mean(), rounds.ci95_halfwidth(),
              pcs.mean(), msgs.mean(), read_lat.mean());

  bool outputs_ok = true;
  if (!metrics_out.empty()) {
    outputs_ok &= write_file(metrics_out, "metrics JSON", [&](auto& out) {
      obs::write_json(registry, out);
    });
  }
  if (!prom_out.empty()) {
    outputs_ok &= write_file(prom_out, "Prometheus metrics", [&](auto& out) {
      obs::write_prometheus(registry, out);
    });
  }
  if (want_trace) {
    // The trace claims to be a valid single-writer register history; hold it
    // to that before handing it to anyone (replays run 0 through the same
    // [R1]/[R2]/[R4] checkers the tests use).  A faulted execution is
    // truncated at convergence, so [R1] does not apply and the safety
    // conditions are checked on the recorded history, whose unresponded
    // write records cover reads that observed a still-in-flight write.
    core::spec::CheckResult check;
    if (faulty && run0_history != nullptr) {
      const auto& ops = run0_history->ops();
      check = core::spec::check_r2(ops);
      for (core::spec::CheckResult part :
           {core::spec::check_single_writer(ops),
            monotone ? core::spec::check_r4(ops) : core::spec::CheckResult{}}) {
        if (!part.ok) {
          check.ok = false;
          check.violations.insert(check.violations.end(),
                                  part.violations.begin(),
                                  part.violations.end());
        }
      }
    } else {
      check = core::spec::check_random_register(
          core::spec::to_op_records(trace.events()), monotone);
    }
    std::printf("op trace: %zu events, spec check %s\n", trace.size(),
                check.ok ? "ok" : "FAILED");
    for (const std::string& v : check.violations) {
      std::fprintf(stderr, "  %s\n", v.c_str());
    }
    if (!check.ok) outputs_ok = false;
  }
  if (!trace_out.empty()) {
    outputs_ok &= write_file(trace_out, "op trace JSONL", [&](auto& out) {
      obs::write_jsonl(trace.events(), out);
    });
  }
  if (!chrome_out.empty()) {
    outputs_ok &= write_file(chrome_out, "Chrome trace", [&](auto& out) {
      obs::write_chrome_trace(trace.events(), out);
    });
  }
  if (want_spans) {
    // Structural audit before export: parents precede children, closed
    // spans are coherent.  A run cut off by max_sim_time can leave ops (and
    // their spans) legitimately in flight, so open spans are allowed here —
    // the open count is reported so a human notices.
    spans.check(/*require_closed=*/false);
    std::printf("spans: %zu recorded, %zu still open\n", spans.size(),
                spans.open_spans());
  }
  if (!spans_out.empty()) {
    outputs_ok &= write_file(spans_out, "span JSONL", [&](auto& out) {
      obs::write_spans_jsonl(spans.spans(), out);
    });
  }
  if (!spans_chrome_out.empty()) {
    outputs_ok &= write_file(spans_chrome_out, "span Chrome trace",
                             [&](auto& out) {
                               obs::write_spans_chrome(spans.spans(), out);
                             });
  }
  if (want_profile) {
    outputs_ok &= write_file(profile_out, "DES profile JSON", [&](auto& out) {
      profiler.write_json(out);
    });
  }

  return (converged == runs && outputs_ok) ? 0 : 1;
}
