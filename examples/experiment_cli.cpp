/// \file experiment_cli.cpp
/// General experiment driver: pick an application, a graph/instance, a
/// quorum system and an execution mode on the command line, get the §7-style
/// metrics back.  This is the scripting entry point for anything the fixed
/// bench binaries do not cover.
///
///   ./experiment_cli app=apsp graph=chain size=34 quorum=prob k=4 \
///                    monotone=1 sync=1 runs=3 seed=1
///
/// keys (defaults):
///   app     = apsp | tc | csp | jacobi | agree        (apsp)
///   graph   = chain | cycle | grid | random | tree    (chain; apsp/tc only)
///   size    = problem size                            (16)
///   quorum  = prob | majority | grid | fpp | hier | rowa | singleton (prob)
///   k       = probabilistic quorum size               (4)
///   servers = replica count for prob/majority/rowa    (= size)
///   monotone= 0|1 (1)        sync = 0|1 (1)
///   runs    = repetitions (3)   seed = master seed (1)
///   cap     = round cap (20000)
///   churn   = 0|1 add random server churn + retries (0)

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "apps/apsp.hpp"
#include "apps/approx_agreement.hpp"
#include "apps/csp.hpp"
#include "apps/graph.hpp"
#include "apps/linear.hpp"
#include "apps/transitive_closure.hpp"
#include "iter/alg1_des.hpp"
#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/hierarchical.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "quorum/rowa.hpp"
#include "quorum/singleton.hpp"
#include "util/stats.hpp"

using namespace pqra;

namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      auto eq = arg.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "ignoring malformed argument '%s'\n",
                     arg.c_str());
        continue;
      }
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::size_t get_n(const std::string& key, std::size_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoul(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

apps::Graph make_graph(const std::string& kind, std::size_t size,
                       util::Rng& rng) {
  if (kind == "chain") return apps::make_chain(size);
  if (kind == "cycle") return apps::make_cycle(size);
  if (kind == "grid") {
    std::size_t side = 2;
    while (side * side < size) ++side;
    return apps::make_grid_graph(side, side);
  }
  if (kind == "random") return apps::make_random_gnp(size, 0.3, 1, 9, rng);
  if (kind == "tree") return apps::make_random_tree(size, rng);
  std::fprintf(stderr, "unknown graph '%s', using chain\n", kind.c_str());
  return apps::make_chain(size);
}

std::unique_ptr<iter::AcoOperator> make_app(const std::string& app,
                                            const std::string& graph_kind,
                                            std::size_t size,
                                            util::Rng& rng) {
  if (app == "apsp") {
    return std::make_unique<apps::ApspOperator>(
        make_graph(graph_kind, size, rng));
  }
  if (app == "tc") {
    return std::make_unique<apps::TransitiveClosureOperator>(
        make_graph(graph_kind, size, rng));
  }
  if (app == "csp") {
    return std::make_unique<apps::ArcConsistencyOperator>(
        apps::make_ordering_csp(size, size + 2));
  }
  if (app == "jacobi") {
    return std::make_unique<apps::JacobiOperator>(
        apps::make_dominant_system(size, 0.7, rng), 1e-8);
  }
  if (app == "agree") {
    std::vector<double> inputs;
    for (std::size_t i = 0; i < size; ++i) {
      inputs.push_back(rng.uniform01() * 100.0);
    }
    return std::make_unique<apps::ApproxAgreementOperator>(std::move(inputs),
                                                           0.01);
  }
  std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
  return nullptr;
}

std::unique_ptr<quorum::QuorumSystem> make_quorums(const std::string& kind,
                                                   std::size_t servers,
                                                   std::size_t k) {
  if (kind == "prob") {
    return std::make_unique<quorum::ProbabilisticQuorums>(servers, k);
  }
  if (kind == "majority") {
    return std::make_unique<quorum::MajorityQuorums>(servers);
  }
  if (kind == "grid") {
    std::size_t side = 2;
    while (side * side < servers) ++side;
    return std::make_unique<quorum::GridQuorums>(side, side);
  }
  if (kind == "fpp") {
    // Smallest prime order with s^2 + s + 1 >= servers.
    std::size_t s = 2;
    while (s * s + s + 1 < servers || !util::is_prime(s)) ++s;
    return std::make_unique<quorum::FppQuorums>(s);
  }
  if (kind == "hier") {
    std::size_t h = 0, n = 1;
    while (n < servers) {
      n *= 3;
      ++h;
    }
    return std::make_unique<quorum::HierarchicalQuorums>(h);
  }
  if (kind == "rowa") return std::make_unique<quorum::ReadOneWriteAll>(servers);
  if (kind == "singleton") {
    return std::make_unique<quorum::SingletonQuorums>(servers);
  }
  std::fprintf(stderr, "unknown quorum system '%s'\n", kind.c_str());
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const std::string app = args.get("app", "apsp");
  const std::string graph = args.get("graph", "chain");
  const std::size_t size = args.get_n("size", 16);
  const std::string quorum_kind = args.get("quorum", "prob");
  const std::size_t servers = args.get_n("servers", size);
  const std::size_t k = args.get_n("k", 4);
  const bool monotone = args.get_n("monotone", 1) != 0;
  const bool sync = args.get_n("sync", 1) != 0;
  const std::size_t runs = args.get_n("runs", 3);
  const std::uint64_t seed = args.get_n("seed", 1);
  const std::size_t cap = args.get_n("cap", 20000);
  const bool churn = args.get_n("churn", 0) != 0;

  util::Rng rng(seed);
  std::unique_ptr<iter::AcoOperator> op = make_app(app, graph, size, rng);
  std::unique_ptr<quorum::QuorumSystem> quorums =
      make_quorums(quorum_kind, servers, k);
  if (op == nullptr || quorums == nullptr) return 2;

  std::printf("app=%s m=%zu | quorums=%s | %s, %s%s | %zu runs\n\n",
              op->name().c_str(), op->num_components(),
              quorums->name().c_str(), monotone ? "monotone" : "plain",
              sync ? "sync" : "async", churn ? ", churn" : "", runs);

  util::OnlineStats rounds, pcs, msgs, read_lat;
  std::size_t converged = 0;
  for (std::size_t run = 0; run < runs; ++run) {
    iter::Alg1Options options;
    options.quorums = quorums.get();
    options.monotone = monotone;
    options.synchronous = sync;
    options.seed = seed + run * 7919;
    options.round_cap = cap;
    util::Rng churn_rng(seed + run);
    net::FaultPlan plan;
    if (churn) {
      plan = net::FaultPlan::random_churn(quorums->num_servers(), 2000.0,
                                          60.0, 15.0, churn_rng);
      options.fault_plan = &plan;
      options.retry_timeout = 10.0;
      options.max_sim_time = 50000.0;
    }
    iter::Alg1Result r = iter::run_alg1(*op, options);
    converged += r.converged;
    rounds.add(static_cast<double>(r.rounds));
    pcs.add(static_cast<double>(r.pseudocycles));
    msgs.add(static_cast<double>(r.messages.total));
    read_lat.merge(r.read_latency);
    std::printf("  run %zu: %s rounds=%zu pseudocycles=%zu msgs=%llu "
                "retries=%llu\n",
                run, r.converged ? "ok " : "CAP", r.rounds, r.pseudocycles,
                static_cast<unsigned long long>(r.messages.total),
                static_cast<unsigned long long>(r.retries));
  }

  std::printf("\nconverged %zu/%zu | rounds %.2f +- %.2f | pseudocycles "
              "%.2f | msgs %.0f | read latency %.2f\n",
              converged, runs, rounds.mean(), rounds.ci95_halfwidth(),
              pcs.mean(), msgs.mean(), read_lat.mean());
  return converged == runs ? 0 : 1;
}
