/// \file experiment_cli.cpp
/// General experiment driver: pick an application, a graph/instance, a
/// quorum system and an execution mode on the command line, get the §7-style
/// metrics back.  This is the scripting entry point for anything the fixed
/// bench binaries do not cover.
///
///   ./experiment_cli app=apsp graph=chain size=34 quorum=prob k=4 \
///                    monotone=1 sync=1 runs=3 seed=1
///
/// keys (defaults):
///   app     = apsp | tc | csp | jacobi | agree        (apsp)
///   graph   = chain | cycle | grid | random | tree    (chain; apsp/tc only)
///   size    = problem size                            (16)
///   quorum  = prob | majority | grid | fpp | hier | rowa | singleton (prob)
///   k       = probabilistic quorum size               (4)
///   servers = replica count for prob/majority/rowa    (= size)
///   monotone= 0|1 (1)        sync = 0|1 (1)
///   runs    = repetitions (3)   seed = master seed (1)
///   cap     = round cap (20000)
///   churn   = 0|1 add random server churn + retries (0)
///
/// Observability outputs (all optional; `--key value` and `--key=value`
/// spellings also accepted, so these read naturally as flags):
///   --metrics-out FILE   JSON snapshot of the metrics registry
///   --prom-out FILE      Prometheus text exposition of the same registry
///   --trace-out FILE     JSONL op trace of run 0 (spec-checkable)
///   --chrome-out FILE    run 0's trace as Chrome trace-event JSON

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "apps/apsp.hpp"
#include "apps/approx_agreement.hpp"
#include "apps/csp.hpp"
#include "apps/graph.hpp"
#include "apps/linear.hpp"
#include "apps/transitive_closure.hpp"
#include "core/spec/checker.hpp"
#include "core/spec/trace_bridge.hpp"
#include "iter/alg1_des.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/hierarchical.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "quorum/rowa.hpp"
#include "quorum/singleton.hpp"
#include "util/stats.hpp"

using namespace pqra;

namespace {

class Args {
 public:
  /// Accepts `key=value`, `--key=value` and `--key value` interchangeably.
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      while (!arg.empty() && arg.front() == '-') arg.erase(arg.begin());
      auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        continue;
      }
      if (i + 1 < argc) {
        values_[arg] = argv[++i];
        continue;
      }
      std::fprintf(stderr, "ignoring malformed argument '%s'\n", arg.c_str());
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::size_t get_n(const std::string& key, std::size_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoul(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

apps::Graph make_graph(const std::string& kind, std::size_t size,
                       util::Rng& rng) {
  if (kind == "chain") return apps::make_chain(size);
  if (kind == "cycle") return apps::make_cycle(size);
  if (kind == "grid") {
    std::size_t side = 2;
    while (side * side < size) ++side;
    return apps::make_grid_graph(side, side);
  }
  if (kind == "random") return apps::make_random_gnp(size, 0.3, 1, 9, rng);
  if (kind == "tree") return apps::make_random_tree(size, rng);
  std::fprintf(stderr, "unknown graph '%s', using chain\n", kind.c_str());
  return apps::make_chain(size);
}

std::unique_ptr<iter::AcoOperator> make_app(const std::string& app,
                                            const std::string& graph_kind,
                                            std::size_t size,
                                            util::Rng& rng) {
  if (app == "apsp") {
    return std::make_unique<apps::ApspOperator>(
        make_graph(graph_kind, size, rng));
  }
  if (app == "tc") {
    return std::make_unique<apps::TransitiveClosureOperator>(
        make_graph(graph_kind, size, rng));
  }
  if (app == "csp") {
    return std::make_unique<apps::ArcConsistencyOperator>(
        apps::make_ordering_csp(size, size + 2));
  }
  if (app == "jacobi") {
    return std::make_unique<apps::JacobiOperator>(
        apps::make_dominant_system(size, 0.7, rng), 1e-8);
  }
  if (app == "agree") {
    std::vector<double> inputs;
    for (std::size_t i = 0; i < size; ++i) {
      inputs.push_back(rng.uniform01() * 100.0);
    }
    return std::make_unique<apps::ApproxAgreementOperator>(std::move(inputs),
                                                           0.01);
  }
  std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
  return nullptr;
}

std::unique_ptr<quorum::QuorumSystem> make_quorums(const std::string& kind,
                                                   std::size_t servers,
                                                   std::size_t k) {
  if (kind == "prob") {
    return std::make_unique<quorum::ProbabilisticQuorums>(servers, k);
  }
  if (kind == "majority") {
    return std::make_unique<quorum::MajorityQuorums>(servers);
  }
  if (kind == "grid") {
    std::size_t side = 2;
    while (side * side < servers) ++side;
    return std::make_unique<quorum::GridQuorums>(side, side);
  }
  if (kind == "fpp") {
    // Smallest prime order with s^2 + s + 1 >= servers.
    std::size_t s = 2;
    while (s * s + s + 1 < servers || !util::is_prime(s)) ++s;
    return std::make_unique<quorum::FppQuorums>(s);
  }
  if (kind == "hier") {
    std::size_t h = 0, n = 1;
    while (n < servers) {
      n *= 3;
      ++h;
    }
    return std::make_unique<quorum::HierarchicalQuorums>(h);
  }
  if (kind == "rowa") return std::make_unique<quorum::ReadOneWriteAll>(servers);
  if (kind == "singleton") {
    return std::make_unique<quorum::SingletonQuorums>(servers);
  }
  std::fprintf(stderr, "unknown quorum system '%s'\n", kind.c_str());
  return nullptr;
}

/// Opens \p path for writing and hands the stream to \p write.  Returns
/// false (with a message) if the file cannot be created.
template <typename WriteFn>
bool write_file(const std::string& path, const char* what, WriteFn write) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for %s output\n", path.c_str(), what);
    return false;
  }
  write(out);
  std::printf("wrote %s to %s\n", what, path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const std::string app = args.get("app", "apsp");
  const std::string graph = args.get("graph", "chain");
  const std::size_t size = args.get_n("size", 16);
  const std::string quorum_kind = args.get("quorum", "prob");
  const std::size_t servers = args.get_n("servers", size);
  const std::size_t k = args.get_n("k", 4);
  const bool monotone = args.get_n("monotone", 1) != 0;
  const bool sync = args.get_n("sync", 1) != 0;
  const std::size_t runs = args.get_n("runs", 3);
  const std::uint64_t seed = args.get_n("seed", 1);
  const std::size_t cap = args.get_n("cap", 20000);
  const bool churn = args.get_n("churn", 0) != 0;
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string prom_out = args.get("prom-out", "");
  const std::string trace_out = args.get("trace-out", "");
  const std::string chrome_out = args.get("chrome-out", "");

  util::Rng rng(seed);
  std::unique_ptr<iter::AcoOperator> op = make_app(app, graph, size, rng);
  std::unique_ptr<quorum::QuorumSystem> quorums =
      make_quorums(quorum_kind, servers, k);
  if (op == nullptr || quorums == nullptr) return 2;

  std::printf("app=%s m=%zu | quorums=%s | %s, %s%s | %zu runs\n\n",
              op->name().c_str(), op->num_components(),
              quorums->name().c_str(), monotone ? "monotone" : "plain",
              sync ? "sync" : "async", churn ? ", churn" : "", runs);

  // One registry accumulates across all runs; the op trace records run 0
  // only (a trace of one execution is what the spec checkers and the Chrome
  // viewer want — concatenating runs would interleave unrelated histories).
  const bool want_metrics = !metrics_out.empty() || !prom_out.empty();
  const bool want_trace = !trace_out.empty() || !chrome_out.empty();
  obs::Registry registry(obs::Concurrency::kSingleThread);
  obs::OpTraceSink trace;

  util::OnlineStats rounds, pcs, msgs, read_lat;
  std::size_t converged = 0;
  for (std::size_t run = 0; run < runs; ++run) {
    iter::Alg1Options options;
    options.quorums = quorums.get();
    options.monotone = monotone;
    options.synchronous = sync;
    options.seed = seed + run * 7919;
    options.round_cap = cap;
    if (want_metrics) options.metrics = &registry;
    if (want_trace && run == 0) options.trace = &trace;
    util::Rng churn_rng(seed + run);
    net::FaultPlan plan;
    if (churn) {
      plan = net::FaultPlan::random_churn(quorums->num_servers(), 2000.0,
                                          60.0, 15.0, churn_rng);
      options.fault_plan = &plan;
      options.retry_timeout = 10.0;
      options.max_sim_time = 50000.0;
    }
    iter::Alg1Result r = iter::run_alg1(*op, options);
    converged += r.converged;
    rounds.add(static_cast<double>(r.rounds));
    pcs.add(static_cast<double>(r.pseudocycles));
    msgs.add(static_cast<double>(r.messages.total));
    read_lat.merge(r.read_latency);
    std::printf("  run %zu: %s rounds=%zu pseudocycles=%zu msgs=%llu "
                "retries=%llu\n",
                run, r.converged ? "ok " : "CAP", r.rounds, r.pseudocycles,
                static_cast<unsigned long long>(r.messages.total),
                static_cast<unsigned long long>(r.retries));
  }

  std::printf("\nconverged %zu/%zu | rounds %.2f +- %.2f | pseudocycles "
              "%.2f | msgs %.0f | read latency %.2f\n",
              converged, runs, rounds.mean(), rounds.ci95_halfwidth(),
              pcs.mean(), msgs.mean(), read_lat.mean());

  bool outputs_ok = true;
  if (!metrics_out.empty()) {
    outputs_ok &= write_file(metrics_out, "metrics JSON", [&](auto& out) {
      obs::write_json(registry, out);
    });
  }
  if (!prom_out.empty()) {
    outputs_ok &= write_file(prom_out, "Prometheus metrics", [&](auto& out) {
      obs::write_prometheus(registry, out);
    });
  }
  if (want_trace) {
    // The trace claims to be a valid single-writer register history; hold it
    // to that before handing it to anyone (replays run 0 through the same
    // [R1]/[R2]/[R4] checkers the tests use).
    core::spec::CheckResult check = core::spec::check_random_register(
        core::spec::to_op_records(trace.events()), monotone);
    std::printf("op trace: %zu events, spec check %s\n", trace.size(),
                check.ok ? "ok" : "FAILED");
    for (const std::string& v : check.violations) {
      std::fprintf(stderr, "  %s\n", v.c_str());
    }
    if (!check.ok) outputs_ok = false;
  }
  if (!trace_out.empty()) {
    outputs_ok &= write_file(trace_out, "op trace JSONL", [&](auto& out) {
      obs::write_jsonl(trace.events(), out);
    });
  }
  if (!chrome_out.empty()) {
    outputs_ok &= write_file(chrome_out, "Chrome trace", [&](auto& out) {
      obs::write_chrome_trace(trace.events(), out);
    });
  }

  return (converged == runs && outputs_ok) ? 0 : 1;
}
