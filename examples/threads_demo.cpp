/// \file threads_demo.cpp
/// The same protocol on real OS threads instead of the simulator: replica
/// servers and clients are std::threads exchanging messages through
/// mailboxes.  One writer publishes a feed; several monotone readers consume
/// it concurrently and verify they never observe time going backwards; then
/// the full APSP application runs end-to-end on the threaded runtime.
///
///   ./threads_demo [servers=8] [quorum_size=3] [readers=4]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "core/blocking_register.hpp"
#include "core/threaded_server.hpp"
#include "iter/alg1_threads.hpp"
#include "net/thread_transport.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"

using namespace pqra;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;
  const std::size_t readers = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;

  quorum::ProbabilisticQuorums qs(n, k);
  std::printf("part 1 — live feed: %zu server threads, %zu monotone reader "
              "threads, %s\n",
              n, readers, qs.name().c_str());

  {
    net::ThreadTransport transport(
        static_cast<net::NodeId>(n + readers + 1));
    std::vector<std::unique_ptr<core::ThreadedServer>> servers;
    for (std::size_t s = 0; s < n; ++s) {
      core::Replica replica;
      replica.preload(0, util::encode<std::int64_t>(0));
      servers.push_back(std::make_unique<core::ThreadedServer>(
          transport, static_cast<net::NodeId>(s), std::move(replica)));
    }

    std::atomic<bool> done{false};
    std::atomic<int> regressions{0};
    std::atomic<long long> reads_done{0};
    std::vector<std::thread> reader_threads;
    for (std::size_t i = 0; i < readers; ++i) {
      reader_threads.emplace_back([&, i] {
        core::BlockingRegisterClient reader(
            transport, static_cast<net::NodeId>(n + 1 + i), qs, 0,
            util::Rng(100 + i), /*monotone=*/true);
        core::Timestamp last = 0;
        while (!done.load()) {
          auto r = reader.read(0);
          if (!r.has_value()) return;
          if (r->ts < last) ++regressions;
          last = r->ts;
          ++reads_done;
        }
      });
    }

    core::BlockingRegisterClient writer(transport,
                                        static_cast<net::NodeId>(n), qs, 0,
                                        util::Rng(1));
    for (std::int64_t v = 1; v <= 500; ++v) {
      writer.write(0, util::encode(v));
    }
    done = true;
    for (auto& t : reader_threads) t.join();
    transport.close();
    servers.clear();

    std::printf("  500 writes published, %lld concurrent reads, "
                "%d monotonicity violations ([R4] holds)\n\n",
                reads_done.load(), regressions.load());
    if (regressions.load() != 0) return 1;
  }

  std::printf("part 2 — APSP on the threaded runtime (10-vertex chain)\n");
  apps::Graph g = apps::make_chain(10);
  apps::ApspOperator op(g);
  iter::Alg1ThreadsOptions options;
  options.quorums = &qs;
  options.monotone = true;
  iter::Alg1ThreadsResult r = iter::run_alg1_threads(op, options);
  std::printf("  %s in %zu rounds, %zu iterations, %llu messages\n",
              r.converged ? "converged" : "cap hit", r.rounds, r.iterations,
              static_cast<unsigned long long>(r.messages.total));
  return r.converged ? 0 : 1;
}
