/// \file apsp_chain.cpp
/// The paper's §7 experiment as a single narrated run: all-pairs shortest
/// paths on the 34-vertex chain, computed by 34 processes over monotone
/// probabilistic quorum registers.
///
///   ./apsp_chain [quorum_size=4] [monotone=1] [synchronous=1]

#include <cstdio>
#include <cstdlib>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "iter/alg1_des.hpp"
#include "quorum/probabilistic.hpp"
#include "util/math.hpp"

using namespace pqra;

int main(int argc, char** argv) {
  const std::size_t k = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const bool monotone = argc > 2 ? std::atoi(argv[2]) != 0 : true;
  const bool synchronous = argc > 3 ? std::atoi(argv[3]) != 0 : true;

  const std::size_t vertices = 34;
  apps::Graph g = apps::make_chain(vertices);
  apps::ApspOperator op(g);

  std::printf("APSP on the paper's 34-vertex chain (diameter 33)\n");
  std::printf("M = ceil(log2 33) = %zu pseudocycles needed in the worst "
              "case\n",
              op.max_pseudocycles().value());

  quorum::ProbabilisticQuorums qs(vertices, k);
  std::printf("registers: %s, %s, %s execution\n", qs.name().c_str(),
              monotone ? "monotone" : "non-monotone",
              synchronous ? "synchronous" : "asynchronous");
  if (2 * k <= vertices) {
    std::printf("Corollary 7 bound: at most %.1f expected rounds\n",
                static_cast<double>(op.max_pseudocycles().value()) *
                    util::corollary7_rounds_per_pseudocycle(vertices, k));
  } else {
    std::printf("2k > n: every pair of quorums intersects — the register is "
                "effectively strict\n");
  }

  iter::Alg1Options options;
  options.quorums = &qs;
  options.monotone = monotone;
  options.synchronous = synchronous;
  options.seed = 7;
  options.round_cap = 5000;
  iter::Alg1Result r = iter::run_alg1(op, options);

  std::printf("\n%s after %zu rounds (%zu pseudocycles, %zu iterations)\n",
              r.converged ? "converged" : "round cap hit", r.rounds,
              r.pseudocycles, r.iterations);
  std::printf("simulated time: %.1f delay units\n", r.sim_time);
  std::printf("messages: %llu total (%llu reads answered, %llu writes "
              "acked)\n",
              static_cast<unsigned long long>(r.messages.total),
              static_cast<unsigned long long>(
                  r.messages.by_type[static_cast<int>(net::MsgType::kReadAck)]),
              static_cast<unsigned long long>(r.messages.by_type[static_cast<int>(
                  net::MsgType::kWriteAck)]));
  if (monotone) {
    std::printf("monotone cache served %llu reads that would have gone "
                "backwards\n",
                static_cast<unsigned long long>(r.monotone_cache_hits));
  }
  std::printf("\n(§6.4 sanity: one round costs 2pmk + 2mk = %zu messages "
              "here)\n",
              2 * vertices * vertices * k + 2 * vertices * k);
  return r.converged ? 0 : 1;
}
